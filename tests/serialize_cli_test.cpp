#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "hub/pll.hpp"
#include "hub/serialize.hpp"
#include "tools/cli.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace hublab {
namespace {

/// RAII temp file path (unique per test).
class TempFile {
 public:
  explicit TempFile(const std::string& tag)
      : path_("/tmp/hublab_test_" + tag + "_" +
              std::to_string(reinterpret_cast<std::uintptr_t>(this))) {}
  ~TempFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(Serialize, RoundTripsLabeling) {
  Rng rng(1);
  const Graph g = gen::connected_gnm(50, 100, rng);
  const HubLabeling original = pruned_landmark_labeling(g);
  std::stringstream buffer;
  save_labeling(original, buffer);
  const HubLabeling loaded = load_labeling(buffer);
  ASSERT_EQ(loaded.num_vertices(), original.num_vertices());
  for (Vertex v = 0; v < 50; ++v) {
    const auto a = original.label(v);
    const auto b = loaded.label(v);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
}

TEST(Serialize, QueriesIdenticalAfterReload) {
  Rng rng(2);
  const Graph g = gen::road_like(6, 6, 0.2, 9, rng);
  const HubLabeling original = pruned_landmark_labeling(g);
  std::stringstream buffer;
  save_labeling(original, buffer);
  const HubLabeling loaded = load_labeling(buffer);
  for (Vertex u = 0; u < g.num_vertices(); u += 3) {
    for (Vertex v = 0; v < g.num_vertices(); v += 5) {
      EXPECT_EQ(loaded.query(u, v), original.query(u, v));
    }
  }
}

TEST(Serialize, EmptyLabelingRoundTrips) {
  HubLabeling empty(5);
  empty.finalize();
  std::stringstream buffer;
  save_labeling(empty, buffer);
  const HubLabeling loaded = load_labeling(buffer);
  EXPECT_EQ(loaded.num_vertices(), 5u);
  EXPECT_EQ(loaded.total_hubs(), 0u);
}

TEST(Serialize, BadMagicThrows) {
  std::stringstream buffer("NOTALABELFILE");
  EXPECT_THROW(load_labeling(buffer), ParseError);
}

TEST(Serialize, TruncationThrows) {
  Rng rng(3);
  const Graph g = gen::connected_gnm(20, 40, rng);
  const HubLabeling original = pruned_landmark_labeling(g);
  std::stringstream buffer;
  save_labeling(original, buffer);
  const std::string full = buffer.str();
  for (const std::size_t cut :
       {std::size_t{5}, std::size_t{12}, full.size() / 2, full.size() - 3}) {
    std::stringstream cut_buffer(full.substr(0, cut));
    EXPECT_THROW(load_labeling(cut_buffer), ParseError) << "cut=" << cut;
  }
}

TEST(Serialize, CorruptHubOrderThrows) {
  // Handcraft a file with descending hubs.
  std::stringstream buffer;
  buffer.write("HLAB", 4);
  const std::uint32_t version = 1;
  buffer.write(reinterpret_cast<const char*>(&version), 4);
  const std::uint64_t n = 3;
  buffer.write(reinterpret_cast<const char*>(&n), 8);
  const std::uint64_t count = 2;
  buffer.write(reinterpret_cast<const char*>(&count), 8);
  const std::uint32_t hub1 = 2;
  const std::uint64_t d = 1;
  const std::uint32_t hub2 = 1;  // descending: invalid
  buffer.write(reinterpret_cast<const char*>(&hub1), 4);
  buffer.write(reinterpret_cast<const char*>(&d), 8);
  buffer.write(reinterpret_cast<const char*>(&hub2), 4);
  buffer.write(reinterpret_cast<const char*>(&d), 8);
  EXPECT_THROW(load_labeling(buffer), ParseError);
}

TEST(Serialize, FileHelpers) {
  Rng rng(4);
  const Graph g = gen::connected_gnm(20, 40, rng);
  const HubLabeling original = pruned_landmark_labeling(g);
  TempFile file("labels");
  save_labeling_file(original, file.path());
  const HubLabeling loaded = load_labeling_file(file.path());
  EXPECT_EQ(loaded.total_hubs(), original.total_hubs());
  EXPECT_THROW(load_labeling_file("/nonexistent/file"), Error);
}

int run_cli(const std::vector<std::string>& args, std::string* out_str = nullptr) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = cli::run(args, out, err);
  if (out_str != nullptr) *out_str = out.str() + err.str();
  return code;
}

TEST(Cli, NoArgsUsage) {
  std::string output;
  EXPECT_EQ(run_cli({}, &output), 2);
  EXPECT_NE(output.find("usage"), std::string::npos);
}

TEST(Cli, UnknownCommand) {
  std::string output;
  EXPECT_EQ(run_cli({"frobnicate"}, &output), 2);
}

TEST(Cli, GenToStdout) {
  std::string output;
  EXPECT_EQ(run_cli({"gen", "grid", "--rows", "3", "--cols", "4"}, &output), 0);
  std::istringstream in(output);
  const Graph g = io::read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 12u);
}

TEST(Cli, GenStatsLabelQueryVerifyPipeline) {
  TempFile graph("graph");
  TempFile labels("labels");
  std::string output;

  ASSERT_EQ(run_cli({"gen", "gnm", "--n", "60", "--m", "120", "-o", graph.path()}, &output), 0);
  EXPECT_NE(output.find("n=60"), std::string::npos);

  ASSERT_EQ(run_cli({"stats", graph.path()}, &output), 0);
  EXPECT_NE(output.find("m=120"), std::string::npos);

  ASSERT_EQ(run_cli({"label", graph.path(), "-o", labels.path()}, &output), 0);
  EXPECT_NE(output.find("PLL(degree)"), std::string::npos);

  ASSERT_EQ(run_cli({"query", graph.path(), labels.path(), "0", "59"}, &output), 0);
  EXPECT_NE(output.find("agree=yes"), std::string::npos);

  ASSERT_EQ(run_cli({"verify", graph.path(), labels.path(), "--samples", "100"}, &output), 0);
  EXPECT_NE(output.find("ok"), std::string::npos);
}

TEST(Cli, LabelOrders) {
  TempFile graph("orders");
  std::string output;
  ASSERT_EQ(run_cli({"gen", "grid", "--rows", "5", "--cols", "5", "-o", graph.path()}, &output), 0);
  for (const char* order : {"degree", "natural", "random", "betweenness"}) {
    EXPECT_EQ(run_cli({"label", graph.path(), "--order", order}, &output), 0) << order;
  }
  EXPECT_EQ(run_cli({"label", graph.path(), "--order", "bogus"}, &output), 1);
}

TEST(Cli, CertifyGadget) {
  std::string output;
  EXPECT_EQ(run_cli({"certify-gadget", "2", "2"}, &output), 0);
  EXPECT_NE(output.find("lemma 2.2: ok"), std::string::npos);
}

TEST(Cli, SumIndex) {
  std::string output;
  EXPECT_EQ(run_cli({"sumindex", "2", "1", "--trials", "8"}, &output), 0);
  EXPECT_NE(output.find("8/8 correct"), std::string::npos);
}

TEST(Cli, QueryDetectsMismatchedLabels) {
  TempFile graph_a("ga");
  TempFile graph_b("gb");
  TempFile labels_a("la");
  std::string output;
  ASSERT_EQ(run_cli({"gen", "grid", "--rows", "4", "--cols", "4", "-o", graph_a.path()}, &output), 0);
  ASSERT_EQ(run_cli({"gen", "grid", "--rows", "5", "--cols", "5", "-o", graph_b.path()}, &output), 0);
  ASSERT_EQ(run_cli({"label", graph_a.path(), "-o", labels_a.path()}, &output), 0);
  EXPECT_EQ(run_cli({"query", graph_b.path(), labels_a.path(), "0", "1"}, &output), 1);
  EXPECT_NE(output.find("error"), std::string::npos);
}

TEST(Cli, GenAllFamilies) {
  std::string output;
  EXPECT_EQ(run_cli({"gen", "tree", "--n", "40"}, &output), 0);
  {
    std::istringstream in(output);
    const Graph g = io::read_edge_list(in);
    EXPECT_EQ(g.num_edges(), 39u);
  }
  EXPECT_EQ(run_cli({"gen", "regular", "--n", "20", "--d", "3"}, &output), 0);
  {
    std::istringstream in(output);
    const Graph g = io::read_edge_list(in);
    EXPECT_EQ(g.max_degree(), 3u);
  }
  EXPECT_EQ(run_cli({"gen", "road", "--rows", "4", "--cols", "5"}, &output), 0);
  {
    std::istringstream in(output);
    const Graph g = io::read_edge_list(in);
    EXPECT_EQ(g.num_vertices(), 20u);
    EXPECT_TRUE(g.is_weighted());
  }
  EXPECT_EQ(run_cli({"gen", "ba", "--n", "30", "--k", "2"}, &output), 0);
}

TEST(Cli, GenGadgets) {
  std::string output;
  EXPECT_EQ(run_cli({"gen", "gadget-h", "--b", "2", "--l", "1"}, &output), 0);
  std::istringstream in(output);
  const Graph h = io::read_edge_list(in);
  EXPECT_EQ(h.num_vertices(), 12u);

  EXPECT_EQ(run_cli({"gen", "gadget-g", "--b", "1", "--l", "1"}, &output), 0);
  std::istringstream in2(output);
  const Graph g3 = io::read_edge_list(in2);
  EXPECT_EQ(g3.max_degree(), 3u);
}

TEST(Cli, ErrorsAreReportedNotThrown) {
  std::string output;
  EXPECT_EQ(run_cli({"stats", "/nonexistent/graph"}, &output), 1);
  EXPECT_NE(output.find("error"), std::string::npos);
  EXPECT_EQ(run_cli({"gen", "mysteryfamily"}, &output), 1);
  EXPECT_EQ(run_cli({"query", "a"}, &output), 1);
}

TEST(Cli, ExplainAgreesWithReferenceOnFig1Gadget) {
  TempFile graph("explain_gadget");
  std::string output;
  ASSERT_EQ(run_cli({"gen", "gadget-g", "--b", "2", "--l", "1", "-o", graph.path()}, &output), 0);
  for (const char* oracle : {"pll", "pll-flat", "ch", "bidij"}) {
    ASSERT_EQ(run_cli({"explain", graph.path(), "0", "5", "--oracle", oracle}, &output), 0)
        << oracle << ": " << output;
    EXPECT_NE(output.find("agree=yes"), std::string::npos) << output;
    EXPECT_NE(output.find("meeting_hub = "), std::string::npos) << output;
    EXPECT_NE(output.find("phase_ns:"), std::string::npos) << output;
#if HUBLAB_METRICS_ENABLED
    // The probe must name an actual hub, not the unreachable sentinel.
    EXPECT_EQ(output.find("meeting_hub = none"), std::string::npos) << output;
    EXPECT_EQ(output.find("hubs: scanned=0"), std::string::npos) << output;
#endif
  }
}

TEST(Cli, ExplainRejectsBadArguments) {
  TempFile graph("explain_bad");
  std::string output;
  ASSERT_EQ(run_cli({"gen", "grid", "--rows", "3", "--cols", "3", "-o", graph.path()}, &output), 0);
  EXPECT_EQ(run_cli({"explain", graph.path(), "0"}, &output), 1);  // missing T
  EXPECT_EQ(run_cli({"explain", graph.path(), "0", "99", "--oracle", "pll"}, &output), 1);
  EXPECT_NE(output.find("out of range"), std::string::npos);
  EXPECT_EQ(run_cli({"explain", graph.path(), "0", "1", "--oracle", "warp"}, &output), 1);
  EXPECT_NE(output.find("unknown oracle"), std::string::npos);
}

TEST(Cli, ServeSimSlowQueryFlagsLandInReport) {
  TempFile graph("serve_slow");
  TempFile json("serve_slow_json");
  std::string output;
  ASSERT_EQ(run_cli({"gen", "grid", "--rows", "6", "--cols", "6", "-o", graph.path()}, &output), 0);
  ASSERT_EQ(run_cli({"serve-sim", graph.path(), "--smoke", "--queries", "200", "--slow-query-ms",
                     "0.000001", "--window-ms", "1", "--json-out", json.path()},
                    &output),
            0)
      << output;
  std::ifstream in(json.path());
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  EXPECT_NE(text.find("\"slow_query_ns\": 1"), std::string::npos) << text.substr(0, 400);
  EXPECT_NE(text.find("\"windows\""), std::string::npos);
  EXPECT_NE(text.find("\"slow_queries\""), std::string::npos);
  EXPECT_NE(text.find("\"slow_queries_total\""), std::string::npos);
  // The run report is accepted by the bundled validator (schema v4).
  EXPECT_EQ(run_cli({"validate-bench", json.path()}, &output), 0) << output;
}

TEST(Cli, ServeSimPromOutFailsCleanlyOnUnwritablePath) {
  TempFile graph("serve_prom_fail");
  TempFile json("serve_prom_fail_json");
  std::string output;
  ASSERT_EQ(run_cli({"gen", "grid", "--rows", "4", "--cols", "4", "-o", graph.path()}, &output), 0);
  EXPECT_EQ(run_cli({"serve-sim", graph.path(), "--smoke", "--queries", "100", "--json-out",
                     json.path(), "--prom-out", "/nonexistent-dir/prom.txt"},
                    &output),
            1);
  EXPECT_NE(output.find("error: serve-sim: cannot write /nonexistent-dir/prom.txt"),
            std::string::npos)
      << output;
  EXPECT_EQ(run_cli({"serve-sim", graph.path(), "--smoke", "--queries", "100", "--window-ms",
                     "0"},
                    &output),
            1);
  EXPECT_NE(output.find("--window-ms must be > 0"), std::string::npos) << output;
}

}  // namespace
}  // namespace hublab
