#include "hub/flat_labeling.hpp"

namespace hublab {

FlatHubLabeling::FlatHubLabeling(const HubLabeling& labels)
    : num_vertices_(labels.num_vertices()) {
  const std::size_t slots = labels.total_hubs() + num_vertices_;  // one sentinel per label
  offsets_.reserve(num_vertices_ + 1);
  hubs_.reserve(slots);
  dists_.reserve(slots);
  for (Vertex v = 0; v < num_vertices_; ++v) {
    const std::size_t first = hubs_.size();
    offsets_.push_back(first);
    for (const HubEntry& e : labels.label(v)) {
      HUBLAB_ASSERT_MSG(e.hub != kInvalidVertex, "kInvalidVertex is reserved as the sentinel");
      HUBLAB_ASSERT_MSG(hubs_.size() == first || hubs_.back() < e.hub,
                        "FlatHubLabeling requires a finalized (sorted, deduplicated) labeling");
      hubs_.push_back(e.hub);
      dists_.push_back(e.dist);
    }
    hubs_.push_back(kInvalidVertex);
    dists_.push_back(kInfDist);
  }
  offsets_.push_back(hubs_.size());
}

}  // namespace hublab
