#include "algo/shortest_paths.hpp"

#include <algorithm>
#include <deque>
#include <queue>

#include "util/error.hpp"
#include "util/metrics.hpp"

namespace hublab {

namespace {

bool all_weights_unit(const Graph& g) { return !g.is_weighted(); }

bool all_weights_01(const Graph& g) { return g.max_weight() <= 1; }

}  // namespace

SsspResult bfs(const Graph& g, Vertex source) {
  HUBLAB_ASSERT(source < g.num_vertices());
  HUBLAB_ASSERT_MSG(all_weights_unit(g), "bfs requires an unweighted graph");
  SsspResult r;
  r.dist.assign(g.num_vertices(), kInfDist);
  r.parent.assign(g.num_vertices(), kInvalidVertex);
  std::vector<Vertex> frontier{source};
  r.dist[source] = 0;
  std::vector<Vertex> next;
  Dist level = 0;
  std::uint64_t visited = 1;
  while (!frontier.empty()) {
    ++level;
    next.clear();
    for (Vertex u : frontier) {
      for (const Arc& a : g.arcs(u)) {
        if (r.dist[a.to] == kInfDist) {
          r.dist[a.to] = level;
          r.parent[a.to] = u;
          next.push_back(a.to);
        }
      }
    }
    visited += next.size();
    frontier.swap(next);
  }
  metrics::registry().counter("sp.bfs.visited").add(visited);
  return r;
}

SsspResult zero_one_bfs(const Graph& g, Vertex source) {
  HUBLAB_ASSERT(source < g.num_vertices());
  HUBLAB_ASSERT_MSG(all_weights_01(g), "zero_one_bfs requires {0,1} weights");
  SsspResult r;
  r.dist.assign(g.num_vertices(), kInfDist);
  r.parent.assign(g.num_vertices(), kInvalidVertex);
  std::deque<Vertex> dq;
  r.dist[source] = 0;
  dq.push_back(source);
  while (!dq.empty()) {
    const Vertex u = dq.front();
    dq.pop_front();
    for (const Arc& a : g.arcs(u)) {
      const Dist nd = r.dist[u] + a.weight;
      if (nd < r.dist[a.to]) {
        r.dist[a.to] = nd;
        r.parent[a.to] = u;
        if (a.weight == 0) dq.push_front(a.to);
        else dq.push_back(a.to);
      }
    }
  }
  return r;
}

SsspResult dijkstra(const Graph& g, Vertex source) {
  HUBLAB_ASSERT(source < g.num_vertices());
  SsspResult r;
  r.dist.assign(g.num_vertices(), kInfDist);
  r.parent.assign(g.num_vertices(), kInvalidVertex);
  using Item = std::pair<Dist, Vertex>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  r.dist[source] = 0;
  pq.emplace(0, source);
  std::uint64_t settled = 0;
  std::uint64_t relaxed = 0;
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d != r.dist[u]) continue;  // stale entry
    ++settled;
    for (const Arc& a : g.arcs(u)) {
      const Dist nd = d + a.weight;
      if (nd < r.dist[a.to]) {
        r.dist[a.to] = nd;
        r.parent[a.to] = u;
        pq.emplace(nd, a.to);
        ++relaxed;
      }
    }
  }
  metrics::registry().counter("sp.dijkstra.settled").add(settled);
  metrics::registry().counter("sp.dijkstra.relaxed").add(relaxed);
  return r;
}

SsspResult sssp(const Graph& g, Vertex source) {
  if (all_weights_unit(g)) return bfs(g, source);
  if (all_weights_01(g)) return zero_one_bfs(g, source);
  return dijkstra(g, source);
}

std::vector<Dist> sssp_distances(const Graph& g, Vertex source) {
  return sssp(g, source).dist;
}

Dist bidirectional_distance(const Graph& g, Vertex s, Vertex t) {
  HUBLAB_ASSERT(s < g.num_vertices() && t < g.num_vertices());
  if (s == t) return 0;
  const std::size_t n = g.num_vertices();
  std::vector<Dist> df(n, kInfDist);
  std::vector<Dist> db(n, kInfDist);
  using Item = std::pair<Dist, Vertex>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> qf;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> qb;
  df[s] = 0;
  db[t] = 0;
  qf.emplace(0, s);
  qb.emplace(0, t);
  Dist best = kInfDist;
  std::uint64_t settled_total = 0;

  auto relax = [&g, &best, &settled_total](
                   std::priority_queue<Item, std::vector<Item>, std::greater<>>& pq,
                   std::vector<Dist>& mine, const std::vector<Dist>& other) -> Dist {
    // Settle one vertex of this direction; return its settled distance.
    while (!pq.empty()) {
      const auto [d, u] = pq.top();
      pq.pop();
      if (d != mine[u]) continue;
      ++settled_total;
      if (other[u] != kInfDist) best = std::min(best, d + other[u]);
      for (const Arc& a : g.arcs(u)) {
        const Dist nd = d + a.weight;
        if (nd < mine[a.to]) {
          mine[a.to] = nd;
          pq.emplace(nd, a.to);
          if (other[a.to] != kInfDist) best = std::min(best, nd + other[a.to]);
        }
      }
      return d;
    }
    return kInfDist;
  };

  Dist top_f = 0;
  Dist top_b = 0;
  while (!qf.empty() || !qb.empty()) {
    // Standard termination: stop once settled radii certify best.
    if (best != kInfDist && top_f + top_b >= best) break;
    if (!qf.empty() && (qb.empty() || qf.top().first <= qb.top().first)) {
      top_f = relax(qf, df, db);
    } else if (!qb.empty()) {
      top_b = relax(qb, db, df);
    }
  }
  metrics::registry().counter("sp.bidij.settled").add(settled_total);
  return best;
}

Dist bidirectional_distance_with_stats(const Graph& g, Vertex s, Vertex t,
                                       metrics::QueryStats& stats) {
  HUBLAB_ASSERT(s < g.num_vertices() && t < g.num_vertices());
  if (s == t) {
    stats.meeting(s);
    return 0;
  }
  const std::size_t n = g.num_vertices();
  std::vector<Dist> df(n, kInfDist);
  std::vector<Dist> db(n, kInfDist);
  using Item = std::pair<Dist, Vertex>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> qf;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> qb;
  df[s] = 0;
  db[t] = 0;
  qf.emplace(0, s);
  qb.emplace(0, t);
  Dist best = kInfDist;
  Vertex meet = kInvalidVertex;
  std::uint64_t settled_total = 0;
  std::uint64_t settled_f = 0;
  std::uint64_t settled_b = 0;

  auto relax = [&g, &best, &meet, &settled_total, &stats](
                   std::priority_queue<Item, std::vector<Item>, std::greater<>>& pq,
                   std::vector<Dist>& mine, const std::vector<Dist>& other,
                   std::uint64_t& settled_mine) -> Dist {
    // Settle one vertex of this direction; return its settled distance.
    // Identical to the plain search, plus bridge bookkeeping for the
    // probe: any vertex both searches have reached is a candidate meeting
    // point, and the one realizing `best` is the reported meeting hub.
    while (!pq.empty()) {
      const auto [d, u] = pq.top();
      pq.pop();
      if (d != mine[u]) continue;
      ++settled_total;
      ++settled_mine;
      if (other[u] != kInfDist) {
        stats.matched();
        if (d + other[u] < best) {
          best = d + other[u];
          meet = u;
        }
      }
      for (const Arc& a : g.arcs(u)) {
        const Dist nd = d + a.weight;
        if (nd < mine[a.to]) {
          mine[a.to] = nd;
          pq.emplace(nd, a.to);
          if (other[a.to] != kInfDist && nd + other[a.to] < best) {
            best = nd + other[a.to];
            meet = a.to;
          }
        }
      }
      return d;
    }
    return kInfDist;
  };

  Dist top_f = 0;
  Dist top_b = 0;
  while (!qf.empty() || !qb.empty()) {
    if (best != kInfDist && top_f + top_b >= best) break;
    if (!qf.empty() && (qb.empty() || qf.top().first <= qb.top().first)) {
      top_f = relax(qf, df, db, settled_f);
    } else if (!qb.empty()) {
      top_b = relax(qb, db, df, settled_b);
    }
  }
  metrics::registry().counter("sp.bidij.settled").add(settled_total);
  stats.labels(settled_f, settled_b);
  stats.scanned(settled_total);
  stats.meeting(meet);
  return best;
}

std::vector<Vertex> extract_path(const SsspResult& tree, Vertex source, Vertex target) {
  if (target >= tree.dist.size() || tree.dist[target] == kInfDist) return {};
  std::vector<Vertex> path;
  for (Vertex v = target; v != source; v = tree.parent[v]) {
    HUBLAB_ASSERT_MSG(v != kInvalidVertex, "broken parent chain");
    path.push_back(v);
  }
  path.push_back(source);
  std::reverse(path.begin(), path.end());
  return path;
}

Dist path_length(const Graph& g, const std::vector<Vertex>& path) {
  Dist total = 0;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const Dist w = g.edge_weight(path[i], path[i + 1]);
    if (w == kInfDist) throw InvalidArgument("path_length: vertices not adjacent");
    total += w;
  }
  return total;
}

std::vector<std::uint64_t> count_shortest_paths(const Graph& g, Vertex source,
                                                const std::vector<Dist>& dist) {
  HUBLAB_ASSERT(dist.size() == g.num_vertices());
  constexpr std::uint64_t kSaturate = 1ULL << 63;
  const std::size_t n = g.num_vertices();

  // Process vertices in order of distance; count[v] = sum of counts of
  // shortest-path predecessors, saturating.
  std::vector<Vertex> order;
  order.reserve(n);
  for (Vertex v = 0; v < n; ++v) {
    if (dist[v] != kInfDist) order.push_back(v);
  }
  std::sort(order.begin(), order.end(),
            [&dist](Vertex a, Vertex b) { return dist[a] < dist[b]; });

  std::vector<std::uint64_t> count(n, 0);
  count[source] = 1;
  for (Vertex v : order) {
    if (v == source) continue;
    std::uint64_t total = 0;
    for (const Arc& a : g.arcs(v)) {
      // Predecessor on a shortest path: dist[u] + w(u,v) == dist[v].
      // Weight-0 edges make "predecessor" ambiguous within a distance
      // level; we forbid them here (counting is used on positive-weight
      // gadgets only).
      HUBLAB_ASSERT_MSG(a.weight > 0, "count_shortest_paths requires positive weights");
      if (dist[a.to] != kInfDist && dist[a.to] + a.weight == dist[v]) {
        const std::uint64_t c = count[a.to];
        total = (total > kSaturate - c) ? kSaturate : total + c;
      }
    }
    count[v] = total;
  }
  return count;
}

Dist eccentricity(const Graph& g, Vertex v) {
  const auto d = sssp_distances(g, v);
  Dist ecc = 0;
  for (Dist x : d) {
    if (x == kInfDist) return kInfDist;
    ecc = std::max(ecc, x);
  }
  return ecc;
}

Dist diameter_exact(const Graph& g) {
  Dist best = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    const Dist e = eccentricity(g, v);
    if (e == kInfDist) return kInfDist;
    best = std::max(best, e);
  }
  return best;
}

Dist diameter_two_sweep(const Graph& g, Vertex seed) {
  if (g.num_vertices() == 0) return 0;
  HUBLAB_ASSERT(seed < g.num_vertices());
  const auto d1 = sssp_distances(g, seed);
  Vertex far = seed;
  Dist far_d = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (d1[v] != kInfDist && d1[v] >= far_d) {
      far_d = d1[v];
      far = v;
    }
  }
  return eccentricity(g, far);
}

}  // namespace hublab
