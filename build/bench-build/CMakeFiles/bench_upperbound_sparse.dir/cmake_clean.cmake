file(REMOVE_RECURSE
  "../bench/bench_upperbound_sparse"
  "../bench/bench_upperbound_sparse.pdb"
  "CMakeFiles/bench_upperbound_sparse.dir/bench_upperbound_sparse.cpp.o"
  "CMakeFiles/bench_upperbound_sparse.dir/bench_upperbound_sparse.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_upperbound_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
