# Empty dependencies file for bench_sumindex_protocol.
# This may be replaced when dependencies are built.
