# Empty dependencies file for bench_highway_dimension.
# This may be replaced when dependencies are built.
