#include "matching/induced_matching.hpp"

#include <algorithm>
#include <set>

namespace hublab {

bool is_matching_in_graph(const Graph& g, const EdgeList& edges) {
  std::set<Vertex> endpoints;
  for (const auto& [u, v] : edges) {
    if (u >= g.num_vertices() || v >= g.num_vertices() || u == v) return false;
    if (!g.has_edge(u, v)) return false;
    if (!endpoints.insert(u).second) return false;
    if (!endpoints.insert(v).second) return false;
  }
  return true;
}

bool is_induced_matching(const Graph& g, const EdgeList& edges) {
  if (!is_matching_in_graph(g, edges)) return false;
  // Gather endpoints, then check that the induced subgraph has exactly the
  // matching edges: for each endpoint, count neighbors inside the set.
  std::set<Vertex> endpoints;
  for (const auto& [u, v] : edges) {
    endpoints.insert(u);
    endpoints.insert(v);
  }
  for (Vertex u : endpoints) {
    std::size_t inside = 0;
    for (const Arc& a : g.arcs(u)) {
      if (endpoints.count(a.to) > 0) ++inside;
    }
    if (inside != 1) return false;  // matched partner only
  }
  return true;
}

std::size_t InducedMatchingPartition::num_edges() const {
  std::size_t total = 0;
  for (const auto& m : matchings) total += m.size();
  return total;
}

std::size_t InducedMatchingPartition::min_matching_size() const {
  std::size_t best = matchings.empty() ? 0 : matchings.front().size();
  for (const auto& m : matchings) best = std::min(best, m.size());
  return best;
}

double InducedMatchingPartition::avg_matching_size() const {
  if (matchings.empty()) return 0.0;
  return static_cast<double>(num_edges()) / static_cast<double>(num_matchings());
}

InducedMatchingPartition greedy_induced_partition(const Graph& g) {
  // Collect all edges once.
  EdgeList edges;
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    for (const Arc& a : g.arcs(u)) {
      if (a.to > u) edges.emplace_back(u, a.to);
    }
  }

  InducedMatchingPartition part;
  std::vector<bool> assigned(edges.size(), false);
  std::size_t remaining = edges.size();

  // in_class[v]: v is an endpoint of the matching currently being built.
  std::vector<bool> in_class(g.num_vertices(), false);
  while (remaining > 0) {
    EdgeList current;
    std::vector<Vertex> touched;
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (assigned[e]) continue;
      const auto [u, v] = edges[e];
      if (in_class[u] || in_class[v]) continue;
      // Induced check: no endpoint of the current class may be adjacent to
      // u or v.
      bool conflict = false;
      for (const Arc& a : g.arcs(u)) {
        if (in_class[a.to]) { conflict = true; break; }
      }
      if (!conflict) {
        for (const Arc& a : g.arcs(v)) {
          if (in_class[a.to]) { conflict = true; break; }
        }
      }
      if (conflict) continue;
      current.emplace_back(u, v);
      in_class[u] = in_class[v] = true;
      touched.push_back(u);
      touched.push_back(v);
      assigned[e] = true;
      --remaining;
    }
    for (Vertex v : touched) in_class[v] = false;
    HUBLAB_ASSERT_MSG(!current.empty(), "greedy induced partition made no progress");
    part.matchings.push_back(std::move(current));
  }
  return part;
}

bool is_valid_induced_partition(const Graph& g, const InducedMatchingPartition& p) {
  std::set<std::pair<Vertex, Vertex>> seen;
  for (const auto& m : p.matchings) {
    if (!is_induced_matching(g, m)) return false;
    for (auto [u, v] : m) {
      if (u > v) std::swap(u, v);
      if (!seen.emplace(u, v).second) return false;  // duplicate edge
    }
  }
  return seen.size() == g.num_edges();
}

EdgeList repair_to_induced(const Graph& g, const EdgeList& candidate) {
  EdgeList kept;
  std::vector<bool> in_class(g.num_vertices(), false);
  for (const auto& [u, v] : candidate) {
    if (u >= g.num_vertices() || v >= g.num_vertices() || !g.has_edge(u, v)) continue;
    if (in_class[u] || in_class[v]) continue;
    bool conflict = false;
    for (const Arc& a : g.arcs(u)) {
      if (in_class[a.to]) { conflict = true; break; }
    }
    if (!conflict) {
      for (const Arc& a : g.arcs(v)) {
        if (in_class[a.to]) { conflict = true; break; }
      }
    }
    if (conflict) continue;
    kept.emplace_back(u, v);
    in_class[u] = in_class[v] = true;
  }
  return kept;
}

}  // namespace hublab
