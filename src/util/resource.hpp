#pragma once

#include <cstdint>

/// \file resource.hpp
/// Process-level resource observations for the run reports: peak resident
/// set size and wall-clock (epoch) time.  Everything else in the
/// observability layer measures monotonic durations; these are the only
/// places a report touches the OS, kept together so the platform `#if`s
/// live in one file.
///
/// Peak RSS is the max of two sources: the kernel's `getrusage` high-water
/// mark, and the samples taken by `sample_rss_peak()` — the sampling
/// profiler (util/profiler.hpp) calls the latter on every tick, so long
/// serve-sim runs record the true in-flight peak even on platforms where
/// `ru_maxrss` under-reports (and the `proc.peak_rss_bytes` gauge exported
/// to Prometheus reflects it).

namespace hublab {

/// Peak resident set size of this process in bytes: the larger of the
/// `getrusage` high-water mark and any `sample_rss_peak()` observations.
/// 0 on platforms without either interface.
[[nodiscard]] std::uint64_t peak_rss_bytes();

/// Current resident set size in bytes (`/proc/self/statm` on Linux; 0
/// where unsupported).  Async-signal-safe on Linux.
[[nodiscard]] std::uint64_t current_rss_bytes();

/// Record `current_rss_bytes()` into the sampled peak (atomic max).
/// Async-signal-safe; the sampling profiler calls this from its SIGPROF
/// tick.
void sample_rss_peak();

/// Largest RSS ever passed to `sample_rss_peak()` (0 when never sampled).
[[nodiscard]] std::uint64_t sampled_peak_rss_bytes();

/// Milliseconds since the Unix epoch (system clock — NOT monotonic; for
/// report timestamps only, never for measuring durations).
[[nodiscard]] std::uint64_t unix_time_ms();

}  // namespace hublab
