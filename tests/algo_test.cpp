#include <gtest/gtest.h>

#include "algo/distance_matrix.hpp"
#include "algo/shortest_paths.hpp"
#include "graph/generators.hpp"
#include "graph/transforms.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace hublab {
namespace {

TEST(Bfs, PathDistances) {
  const Graph g = gen::path(6);
  const auto r = bfs(g, 0);
  for (Vertex v = 0; v < 6; ++v) EXPECT_EQ(r.dist[v], v);
  EXPECT_EQ(r.parent[0], kInvalidVertex);
  EXPECT_EQ(r.parent[3], 2u);
}

TEST(Bfs, DisconnectedInfinity) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  const Graph g = b.build();
  const auto r = bfs(g, 0);
  EXPECT_EQ(r.dist[1], 1u);
  EXPECT_EQ(r.dist[2], kInfDist);
  EXPECT_EQ(r.parent[2], kInvalidVertex);
}

TEST(Bfs, GridCenter) {
  const Graph g = gen::grid(3, 3);
  const auto r = bfs(g, 4);  // center
  EXPECT_EQ(r.dist[0], 2u);
  EXPECT_EQ(r.dist[8], 2u);
  EXPECT_EQ(r.dist[1], 1u);
}

TEST(Dijkstra, WeightedPath) {
  GraphBuilder b(4);
  b.add_edge(0, 1, 5);
  b.add_edge(1, 2, 7);
  b.add_edge(0, 2, 20);
  b.add_edge(2, 3, 1);
  const Graph g = b.build();
  const auto r = dijkstra(g, 0);
  EXPECT_EQ(r.dist[2], 12u);
  EXPECT_EQ(r.dist[3], 13u);
  EXPECT_EQ(r.parent[2], 1u);
}

TEST(Dijkstra, MatchesBfsOnUnweighted) {
  Rng rng(10);
  const Graph g = gen::connected_gnm(120, 240, rng);
  for (Vertex s = 0; s < 10; ++s) {
    EXPECT_EQ(bfs(g, s).dist, dijkstra(g, s).dist);
  }
}

TEST(ZeroOneBfs, HandlesZeroWeights) {
  GraphBuilder b(4);
  b.add_edge(0, 1, 0);
  b.add_edge(1, 2, 1);
  b.add_edge(2, 3, 0);
  const Graph g = b.build();
  const auto r = zero_one_bfs(g, 0);
  EXPECT_EQ(r.dist[1], 0u);
  EXPECT_EQ(r.dist[2], 1u);
  EXPECT_EQ(r.dist[3], 1u);
}

TEST(ZeroOneBfs, MatchesDijkstraOnZeroOne) {
  Rng rng(11);
  GraphBuilder b(60);
  for (int i = 0; i < 150; ++i) {
    const auto u = static_cast<Vertex>(rng.next_below(60));
    const auto v = static_cast<Vertex>(rng.next_below(60));
    if (u != v) b.add_edge(u, v, static_cast<Weight>(rng.next_below(2)));
  }
  const Graph g = b.build();
  for (Vertex s = 0; s < 10; ++s) {
    EXPECT_EQ(zero_one_bfs(g, s).dist, dijkstra(g, s).dist);
  }
}

TEST(Sssp, DispatchesToCorrectAlgorithm) {
  Rng rng(12);
  const Graph unweighted = gen::grid(4, 4);
  const Graph weighted = gen::road_like(4, 4, 0.1, 9, rng);
  EXPECT_EQ(sssp(unweighted, 0).dist, dijkstra(unweighted, 0).dist);
  EXPECT_EQ(sssp(weighted, 0).dist, dijkstra(weighted, 0).dist);
}

TEST(Bidirectional, SameVertexZero) {
  const Graph g = gen::path(4);
  EXPECT_EQ(bidirectional_distance(g, 2, 2), 0u);
}

TEST(Bidirectional, Disconnected) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g = b.build();
  EXPECT_EQ(bidirectional_distance(g, 0, 3), kInfDist);
}

class BidirectionalMatchesDijkstra : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BidirectionalMatchesDijkstra, RandomGraphs) {
  Rng rng(GetParam());
  const Graph base = gen::connected_gnm(90, 200, rng);
  const Graph g = gen::randomize_weights(base, 12, rng);
  Rng pick(GetParam() + 1);
  for (int i = 0; i < 40; ++i) {
    const auto s = static_cast<Vertex>(pick.next_below(90));
    const auto t = static_cast<Vertex>(pick.next_below(90));
    const auto truth = dijkstra(g, s).dist[t];
    EXPECT_EQ(bidirectional_distance(g, s, t), truth) << s << "->" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BidirectionalMatchesDijkstra, ::testing::Values(1, 2, 3, 4, 5));

TEST(ExtractPath, ValidPath) {
  const Graph g = gen::grid(4, 4);
  const auto r = bfs(g, 0);
  const auto path = extract_path(r, 0, 15);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), 0u);
  EXPECT_EQ(path.back(), 15u);
  EXPECT_EQ(path.size(), r.dist[15] + 1);
  EXPECT_EQ(path_length(g, path), r.dist[15]);
}

TEST(ExtractPath, UnreachableEmpty) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const Graph g = b.build();
  EXPECT_TRUE(extract_path(bfs(g, 0), 0, 2).empty());
}

TEST(PathLength, NonAdjacentThrows) {
  const Graph g = gen::path(4);
  EXPECT_THROW(path_length(g, {0, 2}), InvalidArgument);
}

TEST(CountPaths, GridBinomial) {
  const Graph g = gen::grid(3, 3);
  const auto r = bfs(g, 0);
  const auto counts = count_shortest_paths(g, 0, r.dist);
  // Corner-to-corner in a 3x3 grid: C(4,2) = 6 monotone paths.
  EXPECT_EQ(counts[8], 6u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[4], 2u);
}

TEST(CountPaths, EvenCycleTwoWays) {
  const Graph g = gen::cycle(8);
  const auto r = bfs(g, 0);
  const auto counts = count_shortest_paths(g, 0, r.dist);
  EXPECT_EQ(counts[4], 2u);  // antipodal vertex
  EXPECT_EQ(counts[3], 1u);
}

TEST(CountPaths, UniqueOnTree) {
  Rng rng(13);
  const Graph g = gen::random_tree(60, rng);
  const auto r = bfs(g, 0);
  const auto counts = count_shortest_paths(g, 0, r.dist);
  for (Vertex v = 0; v < 60; ++v) EXPECT_EQ(counts[v], 1u);
}

TEST(Eccentricity, PathEnds) {
  const Graph g = gen::path(7);
  EXPECT_EQ(eccentricity(g, 0), 6u);
  EXPECT_EQ(eccentricity(g, 3), 3u);
}

TEST(Diameter, KnownValues) {
  EXPECT_EQ(diameter_exact(gen::path(9)), 8u);
  EXPECT_EQ(diameter_exact(gen::cycle(9)), 4u);
  EXPECT_EQ(diameter_exact(gen::grid(3, 5)), 6u);
}

TEST(Diameter, DisconnectedIsInfinite) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  EXPECT_EQ(diameter_exact(b.build()), kInfDist);
}

TEST(Diameter, TwoSweepExactOnTrees) {
  Rng rng(14);
  for (int i = 0; i < 5; ++i) {
    const Graph g = gen::random_tree(80, rng);
    EXPECT_EQ(diameter_two_sweep(g), diameter_exact(g));
  }
}

TEST(Diameter, TwoSweepIsLowerBound) {
  Rng rng(15);
  const Graph g = gen::connected_gnm(70, 140, rng);
  EXPECT_LE(diameter_two_sweep(g), diameter_exact(g));
}

TEST(DistanceMatrix, MatchesSssp) {
  Rng rng(16);
  const Graph g = gen::connected_gnm(50, 100, rng);
  const auto m = DistanceMatrix::compute(g);
  for (Vertex u = 0; u < 50; u += 7) {
    const auto d = sssp_distances(g, u);
    for (Vertex v = 0; v < 50; ++v) EXPECT_EQ(m.at(u, v), d[v]);
  }
}

TEST(DistanceMatrix, Symmetry) {
  Rng rng(17);
  const Graph base = gen::connected_gnm(40, 80, rng);
  const Graph g = gen::randomize_weights(base, 9, rng);
  const auto m = DistanceMatrix::compute(g);
  for (Vertex u = 0; u < 40; ++u) {
    for (Vertex v = 0; v < 40; ++v) EXPECT_EQ(m.at(u, v), m.at(v, u));
  }
}

TEST(DistanceMatrix, ValidHubsPathGraph) {
  const Graph g = gen::path(5);
  const auto m = DistanceMatrix::compute(g);
  // Between the path ends, every vertex is a valid hub.
  EXPECT_EQ(m.num_valid_hubs(0, 4), 5u);
  const auto hubs = m.valid_hubs(0, 4);
  EXPECT_EQ(hubs.size(), 5u);
  // Between adjacent vertices only the two endpoints qualify.
  EXPECT_EQ(m.num_valid_hubs(1, 2), 2u);
}

TEST(DistanceMatrix, OnShortestPath) {
  const Graph g = gen::grid(3, 3);
  const auto m = DistanceMatrix::compute(g);
  EXPECT_TRUE(m.on_shortest_path(0, 4, 8));
  EXPECT_FALSE(m.on_shortest_path(0, 6, 2));
}

TEST(DistanceMatrix, DisconnectedPairsNoHubs) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const auto m = DistanceMatrix::compute(b.build());
  EXPECT_EQ(m.num_valid_hubs(0, 2), 0u);
  EXPECT_TRUE(m.valid_hubs(0, 2).empty());
}

}  // namespace
}  // namespace hublab
