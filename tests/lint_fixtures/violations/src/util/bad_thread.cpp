// Fixture: raw-thread -- spawning a thread outside util/parallel.cpp.

namespace fixture {

void spawn() { std::thread t([] {}); }

}  // namespace fixture
