file(REMOVE_RECURSE
  "CMakeFiles/sumindex_game.dir/sumindex_game.cpp.o"
  "CMakeFiles/sumindex_game.dir/sumindex_game.cpp.o.d"
  "sumindex_game"
  "sumindex_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sumindex_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
