# Empty dependencies file for bench_upperbound_pipeline.
# This may be replaced when dependencies are built.
