file(REMOVE_RECURSE
  "../bench/bench_label_encoding"
  "../bench/bench_label_encoding.pdb"
  "CMakeFiles/bench_label_encoding.dir/bench_label_encoding.cpp.o"
  "CMakeFiles/bench_label_encoding.dir/bench_label_encoding.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_label_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
