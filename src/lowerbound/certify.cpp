#include "lowerbound/certify.hpp"

#include <algorithm>
#include <map>

#include "algo/shortest_paths.hpp"

namespace hublab::lb {

namespace {

/// Enumerate the source indices to check: all of [0, layer) or a sample.
std::vector<std::uint64_t> pick_sources(std::uint64_t layer, std::uint64_t max_sources,
                                        std::uint64_t seed) {
  std::vector<std::uint64_t> sources;
  if (layer <= max_sources) {
    sources.resize(layer);
    for (std::uint64_t i = 0; i < layer; ++i) sources[i] = i;
  } else {
    Rng rng(seed);
    sources.reserve(max_sources);
    for (std::uint64_t i = 0; i < max_sources; ++i) sources.push_back(rng.next_below(layer));
    std::sort(sources.begin(), sources.end());
    sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
  }
  return sources;
}

/// Enumerate all z-coordinate vectors with even differences to x:
/// per coordinate, z_k ranges over { x_k mod 2, x_k mod 2 + 2, ... }.
/// Invokes fn(z) for each.
template <typename Fn>
void for_each_even_partner(const Coords& x, std::uint64_t s, Fn&& fn) {
  const std::size_t ell = x.size();
  Coords z(ell);
  // Odometer over (s/2)^ell choices.
  std::vector<std::uint32_t> choice(ell, 0);
  const std::uint64_t half = s / 2;
  for (;;) {
    for (std::size_t k = 0; k < ell; ++k) {
      z[k] = static_cast<std::uint32_t>((x[k] % 2) + 2 * choice[k]);
    }
    fn(z);
    std::size_t pos = 0;
    while (pos < ell && choice[pos] + 1 == half) choice[pos++] = 0;
    if (pos == ell) break;
    ++choice[pos];
  }
}

}  // namespace

Lemma22Report verify_lemma_2_2(const LayeredGadget& h, std::uint64_t max_sources,
                               std::uint64_t seed) {
  const GadgetParams& p = h.params();
  Lemma22Report report;
  const auto sources = pick_sources(p.layer_size(), max_sources, seed);

  for (std::uint64_t xi : sources) {
    const Coords x = h.index_to_coords(xi);
    const Vertex src = h.vertex(0, xi);
    const SsspResult tree = dijkstra(h.graph(), src);
    const auto counts = count_shortest_paths(h.graph(), src, tree.dist);
    ++report.sources_checked;

    for_each_even_partner(x, p.s(), [&](const Coords& z) {
      const Vertex dst = h.vertex_at(2ULL * p.ell, z);
      ++report.pairs_checked;
      if (tree.dist[dst] != h.predicted_distance(x, z)) {
        ++report.distance_mismatches;
        return;
      }
      if (counts[dst] != 1) {
        ++report.non_unique_paths;
        return;
      }
      // Walk the unique path via parents and look for the midpoint.
      const Vertex mid = h.predicted_midpoint(x, z);
      bool found = false;
      for (Vertex v = dst; v != kInvalidVertex; v = tree.parent[v]) {
        if (v == mid) {
          found = true;
          break;
        }
        if (v == src) break;
      }
      if (!found) ++report.midpoint_misses;
    });
  }
  return report;
}

Lemma22Report verify_lemma_2_2_degree3(const LayeredGadget& h, const Degree3Gadget& g,
                                       std::uint64_t max_sources, std::uint64_t seed) {
  const GadgetParams& p = h.params();
  Lemma22Report report;
  const auto sources = pick_sources(p.layer_size(), max_sources, seed);

  for (std::uint64_t xi : sources) {
    const Coords x = h.index_to_coords(xi);
    const Vertex src = g.image(h.vertex(0, xi));
    const SsspResult tree = bfs(g.graph(), src);
    const auto counts = count_shortest_paths(g.graph(), src, tree.dist);
    ++report.sources_checked;

    for_each_even_partner(x, p.s(), [&](const Coords& z) {
      const Vertex dst = g.image(h.vertex_at(2ULL * p.ell, z));
      ++report.pairs_checked;
      if (tree.dist[dst] != h.predicted_distance(x, z)) {
        ++report.distance_mismatches;
        return;
      }
      if (counts[dst] != 1) {
        ++report.non_unique_paths;
        return;
      }
      const Vertex mid = g.image(h.predicted_midpoint(x, z));
      bool found = false;
      for (Vertex v = dst; v != kInvalidVertex; v = tree.parent[v]) {
        if (v == mid) {
          found = true;
          break;
        }
        if (v == src) break;
      }
      if (!found) ++report.midpoint_misses;
    });
  }
  return report;
}

double certified_avg_hub_lower_bound(std::uint64_t num_triplets, std::uint64_t num_vertices,
                                     std::uint64_t hop_diameter) {
  if (num_vertices == 0 || hop_diameter == 0) return 0.0;
  const double per_vertex =
      static_cast<double>(num_triplets) / static_cast<double>(num_vertices) - 1.0;
  return std::max(0.0, per_vertex / static_cast<double>(hop_diameter));
}

double certified_bound_h(const GadgetParams& params) {
  return certified_avg_hub_lower_bound(params.num_triplets(), params.num_h_vertices(),
                                       params.hop_diameter_bound());
}

double certified_bound_g(const GadgetParams& params, std::uint64_t g_num_vertices) {
  return certified_avg_hub_lower_bound(params.num_triplets(), g_num_vertices,
                                       params.weighted_diameter_bound());
}

ClosureAudit audit_closure_bound(const Graph& g, const HubLabeling& labeling,
                                 std::uint64_t num_triplets) {
  ClosureAudit audit;
  audit.required = num_triplets;
  audit.sum_labels = labeling.total_hubs();
  const HubLabeling closed = monotone_closure(g, labeling);
  audit.sum_closure = closed.total_hubs();
  return audit;
}

std::vector<RadiusClassStructure> midpoint_matching_structure(const LayeredGadget& h) {
  const GadgetParams& p = h.params();
  const std::uint64_t layer = p.layer_size();

  // Bucket every even-difference pair by its squared radius; remember the
  // midpoint index as the class key.
  struct PairRecord {
    Vertex left;
    Vertex right;           // offset by layer in the bipartite graph
    std::uint64_t midpoint; // index in [0, layer)
  };
  std::map<std::uint64_t, std::vector<PairRecord>> by_radius;

  for (std::uint64_t xi = 0; xi < layer; ++xi) {
    const Coords x = h.index_to_coords(xi);
    Coords z(x.size());
    // Odometer over the even partners (same scheme as the Lemma checker).
    std::vector<std::uint32_t> choice(p.ell, 0);
    const std::uint64_t half = p.s() / 2;
    for (;;) {
      std::uint64_t radius = 0;
      Coords mid(x.size());
      for (std::size_t k = 0; k < x.size(); ++k) {
        z[k] = static_cast<std::uint32_t>((x[k] % 2) + 2 * choice[k]);
        const std::uint64_t d =
            (x[k] > z[k] ? x[k] - z[k] : z[k] - x[k]) / 2;
        radius += d * d;
        mid[k] = static_cast<std::uint32_t>((x[k] + z[k]) / 2);
      }
      by_radius[radius].push_back(PairRecord{static_cast<Vertex>(xi),
                                             static_cast<Vertex>(layer + h.coords_to_index(z)),
                                             h.coords_to_index(mid)});
      std::size_t pos = 0;
      while (pos < p.ell && choice[pos] + 1 == half) choice[pos++] = 0;
      if (pos == p.ell) break;
      ++choice[pos];
    }
  }

  std::vector<RadiusClassStructure> out;
  out.reserve(by_radius.size());
  for (const auto& [radius, records] : by_radius) {
    RadiusClassStructure rc;
    rc.radius = radius;
    GraphBuilder builder(2 * layer);
    std::map<std::uint64_t, EdgeList> classes;
    for (const PairRecord& rec : records) {
      builder.add_edge(rec.left, rec.right);
      classes[rec.midpoint].emplace_back(rec.left, rec.right);
    }
    rc.bipartite = builder.build();
    rc.partition.matchings.reserve(classes.size());
    for (auto& [mid, edges] : classes) rc.partition.matchings.push_back(std::move(edges));
    out.push_back(std::move(rc));
  }
  return out;
}

}  // namespace hublab::lb
