#pragma once

#include <vector>

#include "oracle/oracle.hpp"
#include "util/rng.hpp"

/// \file alt.hpp
/// ALT: A* with landmark lower bounds (Goldberg-Harrelson), the classic
/// goal-directed *exact* query method built from the same ingredient as
/// the LandmarkOracle (triangle-inequality distances), completing the
/// Section 1.1 landscape of practical schemes.
///
/// Potential pi_t(u) = max over landmarks l of |dist(l,u) - dist(l,t)| is
/// a consistent A* heuristic, so the search is exact while settling far
/// fewer vertices than plain Dijkstra on goal-directed instances.

namespace hublab {

/// Farthest-point landmark selection: start from a seed, repeatedly add
/// the vertex maximizing the distance to the chosen set.
std::vector<Vertex> farthest_landmarks(const Graph& g, std::size_t count, std::uint64_t seed = 1);

class AltOracle final : public DistanceOracle {
 public:
  AltOracle(const Graph& g, const std::vector<Vertex>& landmarks);

  [[nodiscard]] std::string name() const override { return "alt-astar"; }
  [[nodiscard]] Dist distance(Vertex u, Vertex v) const override;
  [[nodiscard]] std::size_t space_bytes() const override {
    return rows_.size() * (rows_.empty() ? 0 : rows_.front().size()) * sizeof(Dist);
  }

  /// Vertices settled by the last query (diagnostics; not thread-safe).
  [[nodiscard]] std::size_t last_settled() const { return last_settled_; }

 private:
  [[nodiscard]] Dist potential(Vertex u, Vertex t) const;

  const Graph* g_;
  std::vector<std::vector<Dist>> rows_;  ///< per-landmark distance rows
  mutable std::size_t last_settled_ = 0;
};

}  // namespace hublab
