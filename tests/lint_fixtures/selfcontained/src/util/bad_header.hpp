#pragma once

/// \file bad_header.hpp
/// Fixture: self-contained -- uses std::string without including it.

namespace fixture {

inline std::size_t length_of(const std::string& s) { return s.size(); }

}  // namespace fixture
