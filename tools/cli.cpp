#include "tools/cli.hpp"

#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <span>
#include <sstream>
#include <utility>

#include "algo/shortest_paths.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/transforms.hpp"
#include "hub/flat_labeling.hpp"
#include "hub/order.hpp"
#include "hub/pll.hpp"
#include "hub/serialize.hpp"
#include "lowerbound/certify.hpp"
#include "lowerbound/gadget.hpp"
#include "oracle/oracle.hpp"
#include "oracle/serve.hpp"
#include "oracle/server.hpp"
#include "rs/rs_graph.hpp"
#include "sumindex/sumindex.hpp"
#include "util/bench_compare.hpp"
#include "util/bench_schema.hpp"
#include "util/error.hpp"
#include "util/flightrec.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"
#include "util/perfcount.hpp"
#include "util/profiler.hpp"
#include "util/prometheus.hpp"
#include "util/querystats.hpp"
#include "util/resource.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

// CMake defines HUBLAB_GIT_REV from `git rev-parse --short HEAD`; the
// fallback keeps the file compiling in isolation.
#ifndef HUBLAB_GIT_REV
#define HUBLAB_GIT_REV "unknown"
#endif

namespace hublab::cli {

namespace {

/// True for options that take no value (every other --option consumes the
/// following argument).
bool is_boolean_flag(const std::string& name) {
  return name == "--smoke" || name == "--quiet" || name == "--all" ||
         name == "--perf-counters";
}

/// Tiny argument cursor: positionals in order plus --key value options and
/// boolean --flags.
class Args {
 public:
  explicit Args(std::vector<std::string> args) : args_(std::move(args)) {}

  [[nodiscard]] std::optional<std::string> next_positional() {
    while (cursor_ < args_.size()) {
      const std::string& a = args_[cursor_];
      if (a.rfind("--", 0) == 0 || a == "-o") {
        cursor_ += is_boolean_flag(a) ? 1 : 2;  // skip option (and its value)
        continue;
      }
      return args_[cursor_++];
    }
    return std::nullopt;
  }

  [[nodiscard]] std::optional<std::string> option(const std::string& name) const {
    for (std::size_t i = 0; i + 1 < args_.size(); ++i) {
      if (args_[i] == name) return args_[i + 1];
    }
    return std::nullopt;
  }

  [[nodiscard]] std::uint64_t option_u64(const std::string& name, std::uint64_t fallback) const {
    const auto v = option(name);
    return v ? std::stoull(*v) : fallback;
  }

  [[nodiscard]] double option_double(const std::string& name, double fallback) const {
    const auto v = option(name);
    return v ? std::stod(*v) : fallback;
  }

  [[nodiscard]] bool flag(const std::string& name) const {
    for (const std::string& a : args_) {
      if (a == name) return true;
    }
    return false;
  }

 private:
  std::vector<std::string> args_;
  std::size_t cursor_ = 0;
};

std::uint64_t parse_u64(const std::string& s, const char* what) {
  try {
    return std::stoull(s);
  } catch (const std::exception&) {
    throw InvalidArgument(std::string("expected a number for ") + what + ", got: " + s);
  }
}

int cmd_gen(Args& args, std::ostream& out) {
  const auto family = args.next_positional();
  if (!family) {
    throw InvalidArgument(
        "gen: missing family (gnm|grid|tree|ba|regular|road|rs|gadget-h|gadget-g)");
  }
  const auto output = args.option("-o");
  Rng rng(args.option_u64("--seed", 1));
  const std::uint64_t n = args.option_u64("--n", 100);
  const std::uint64_t m = args.option_u64("--m", 2 * n);
  const std::uint64_t rows = args.option_u64("--rows", 10);
  const std::uint64_t cols = args.option_u64("--cols", 10);
  const std::uint64_t b = args.option_u64("--b", 2);
  const std::uint64_t ell = args.option_u64("--l", 2);

  Graph g;
  if (*family == "gnm") {
    g = gen::connected_gnm(n, m, rng);
  } else if (*family == "grid") {
    g = gen::grid(rows, cols);
  } else if (*family == "tree") {
    g = gen::random_tree(n, rng);
  } else if (*family == "ba") {
    g = gen::barabasi_albert(n, args.option_u64("--k", 2), rng);
  } else if (*family == "regular") {
    g = gen::random_regular(n, args.option_u64("--d", 3), rng);
  } else if (*family == "road") {
    g = gen::road_like(rows, cols, 0.2, static_cast<Weight>(args.option_u64("--maxw", 10)), rng);
  } else if (*family == "rs") {
    // Ruzsa-Szemeredi graph from a Behrend set (Definition 1.3); 3M vertices.
    g = rs::behrend_rs_graph(args.option_u64("--M", 16)).graph;
  } else if (*family == "gadget-h") {
    g = lb::LayeredGadget(
            lb::GadgetParams{static_cast<std::uint32_t>(b), static_cast<std::uint32_t>(ell)})
            .graph();
  } else if (*family == "gadget-g") {
    const lb::LayeredGadget h(
        lb::GadgetParams{static_cast<std::uint32_t>(b), static_cast<std::uint32_t>(ell)});
    g = lb::Degree3Gadget(h).graph();
  } else {
    throw InvalidArgument("gen: unknown family: " + *family);
  }

  if (output) {
    io::save_edge_list(g, *output);
    out << "wrote " << *output << ": n=" << g.num_vertices() << " m=" << g.num_edges() << "\n";
  } else {
    io::write_edge_list(g, out);
  }
  return 0;
}

int cmd_stats(Args& args, std::ostream& out) {
  const auto file = args.next_positional();
  if (!file) throw InvalidArgument("stats: missing graph file");
  const Graph g = io::load_edge_list(*file);
  out << "n=" << g.num_vertices() << " m=" << g.num_edges()
      << " avg_degree=" << g.average_degree() << " max_degree=" << g.max_degree()
      << " weighted=" << (g.is_weighted() ? "yes" : "no")
      << " components=" << num_connected_components(g) << "\n";
  if (g.num_vertices() > 0 && num_connected_components(g) == 1) {
    out << "diameter>=" << diameter_two_sweep(g) << " (two-sweep bound)\n";
  }
  return 0;
}

std::vector<Vertex> order_from_name(const Graph& g, const std::string& name, std::uint64_t seed) {
  if (name == "degree") return make_vertex_order(g, VertexOrder::kDegreeDescending);
  if (name == "natural") return make_vertex_order(g, VertexOrder::kNatural);
  if (name == "random") return make_vertex_order(g, VertexOrder::kRandom, seed);
  if (name == "betweenness") {
    Rng rng(seed);
    return betweenness_order(g, std::min<std::size_t>(64, g.num_vertices()), rng);
  }
  throw InvalidArgument("unknown order: " + name + " (degree|natural|random|betweenness)");
}

int cmd_label(Args& args, std::ostream& out) {
  const auto file = args.next_positional();
  if (!file) throw InvalidArgument("label: missing graph file");
  const Graph g = io::load_edge_list(*file);
  const std::string order_name = args.option("--order").value_or("degree");
  const auto order = order_from_name(g, order_name, args.option_u64("--seed", 1));
  PllConfig pll;
  pll.bp_roots = static_cast<std::size_t>(args.option_u64("--bp-roots", kPllDefaultBpRoots));
  pll.threads = static_cast<std::size_t>(args.option_u64("--threads", 0));
  const HubLabeling labels = pruned_landmark_labeling(g, order, pll);
  const FlatHubLabeling flat(labels);
  out << "PLL(" << order_name << "): avg=" << labels.average_label_size()
      << " max=" << labels.max_label_size() << " total=" << labels.total_hubs()
      << " bytes=" << labels.memory_bytes() << " flat_bytes=" << flat.memory_bytes() << "\n";
  if (const auto output = args.option("-o")) {
    save_labeling_file(labels, *output);
    out << "wrote " << *output << "\n";
  }
  return 0;
}

int cmd_query(Args& args, std::ostream& out) {
  const auto graph_file = args.next_positional();
  const auto labels_file = args.next_positional();
  const auto u_str = args.next_positional();
  const auto v_str = args.next_positional();
  if (!graph_file || !labels_file || !u_str || !v_str) {
    throw InvalidArgument("query: usage: query GRAPH LABELS U V");
  }
  const Graph g = io::load_edge_list(*graph_file);
  const HubLabeling labels = load_labeling_file(*labels_file);
  if (labels.num_vertices() != g.num_vertices()) {
    throw InvalidArgument("query: labels do not match graph size");
  }
  const auto u = static_cast<Vertex>(parse_u64(*u_str, "U"));
  const auto v = static_cast<Vertex>(parse_u64(*v_str, "V"));
  if (u >= g.num_vertices() || v >= g.num_vertices()) {
    throw InvalidArgument("query: vertex out of range");
  }
  const HubQueryResult q = labels.query_with_hub(u, v);
  const Dist reference = bidirectional_distance(g, u, v);
  out << "dist(" << u << "," << v << ") = ";
  if (q.dist == kInfDist) out << "inf";
  else out << q.dist;
  out << " via hub " << q.meeting_hub << "; dijkstra=" << (reference == kInfDist ? 0 : reference)
      << " agree=" << (q.dist == reference ? "yes" : "NO") << "\n";
  return q.dist == reference ? 0 : 1;
}

int cmd_verify(Args& args, std::ostream& out) {
  const auto graph_file = args.next_positional();
  const auto labels_file = args.next_positional();
  if (!graph_file || !labels_file) throw InvalidArgument("verify: usage: verify GRAPH LABELS");
  const Graph g = io::load_edge_list(*graph_file);
  const HubLabeling labels = load_labeling_file(*labels_file);
  if (labels.num_vertices() != g.num_vertices()) {
    throw InvalidArgument("verify: labels do not match graph size");
  }
  const std::uint64_t samples = args.option_u64("--samples", 200);
  const auto threads = static_cast<std::size_t>(args.option_u64("--threads", 0));
  const auto defect =
      verify_labeling_sampled(g, labels, samples, args.option_u64("--seed", 7), threads);
  if (defect) {
    out << "DEFECT: kind="
        << (defect->kind == LabelingDefect::Kind::kWrongDistance ? "wrong-distance"
                                                                 : "uncovered-pair")
        << " u=" << defect->u << " v=" << defect->v << " stored=" << defect->stored
        << " actual=" << defect->actual << "\n";
    return 1;
  }
  out << "ok: " << samples << " sampled checks passed\n";
  return 0;
}

int cmd_certify_gadget(Args& args, std::ostream& out) {
  const auto b_str = args.next_positional();
  const auto l_str = args.next_positional();
  if (!b_str || !l_str) throw InvalidArgument("certify-gadget: usage: certify-gadget B L");
  const lb::GadgetParams p{static_cast<std::uint32_t>(parse_u64(*b_str, "B")),
                           static_cast<std::uint32_t>(parse_u64(*l_str, "L"))};
  const lb::LayeredGadget h(p);
  const auto report = lb::verify_lemma_2_2(h, 128, 1);
  out << "H_{" << p.b << "," << p.ell << "}: n=" << h.graph().num_vertices()
      << " m=" << h.graph().num_edges() << "\n";
  out << "lemma 2.2: " << (report.ok() ? "ok" : "FAILED") << " (" << report.pairs_checked
      << " pairs)\n";
  out << "counting bound: any labeling needs avg >= " << lb::certified_bound_h(p)
      << " hubs/vertex (T=" << p.num_triplets() << ")\n";
  return report.ok() ? 0 : 1;
}

int cmd_sumindex(Args& args, std::ostream& out) {
  const auto b_str = args.next_positional();
  const auto l_str = args.next_positional();
  if (!b_str || !l_str) throw InvalidArgument("sumindex: usage: sumindex B L [--trials N]");
  const lb::GadgetParams p{static_cast<std::uint32_t>(parse_u64(*b_str, "B")),
                           static_cast<std::uint32_t>(parse_u64(*l_str, "L"))};
  const auto scheme = std::make_shared<HubDistanceLabeling>(
      +[](const Graph& g) { return pruned_landmark_labeling(g, VertexOrder::kNatural); }, "pll");
  const si::GadgetProtocol protocol(p, scheme);
  const std::uint64_t trials = args.option_u64("--trials", 32);
  const auto stats = si::evaluate_protocol(protocol, trials, args.option_u64("--seed", 17), 8);
  out << "sum-index over m=" << protocol.universe_size() << ": " << stats.correct << "/"
      << stats.trials << " correct, max message " << stats.max_alice_bits << " bits\n";
  return stats.all_correct() ? 0 : 1;
}

/// End-to-end phase trace of a PLL pipeline on a graph file: load, order,
/// build, query, each as a tracer span with counter deltas, followed by the
/// full metrics dump.  --chrome FILE additionally writes trace_event JSON
/// loadable in chrome://tracing / Perfetto.
int cmd_trace(Args& args, std::ostream& out) {
  const auto file = args.next_positional();
  if (!file) {
    throw InvalidArgument(
        "trace: usage: trace GRAPH [--order NAME] [--seed N] [--queries K] [--chrome FILE]");
  }
  metrics::registry().reset();
  Tracer tracer;

  auto load_span = tracer.span("load-graph");
  const Graph g = io::load_edge_list(*file);
  load_span.end();

  const std::string order_name = args.option("--order").value_or("degree");
  auto order_span = tracer.span("order-" + order_name);
  const auto order = order_from_name(g, order_name, args.option_u64("--seed", 1));
  order_span.end();

  auto build_span = tracer.span("build-pll");
  const HubLabeling labels = pruned_landmark_labeling(g, order);
  build_span.end();

  const std::uint64_t queries = args.option_u64("--queries", 1000);
  {
    auto query_span = tracer.span("hub-queries");
    Rng rng(args.option_u64("--seed", 1) + 1);
    std::uint64_t reachable = 0;
    for (std::uint64_t i = 0; i < queries; ++i) {
      const auto u = static_cast<Vertex>(rng.next_below(g.num_vertices()));
      const auto v = static_cast<Vertex>(rng.next_below(g.num_vertices()));
      if (labels.query(u, v) != kInfDist) ++reachable;
    }
    metrics::registry().counter("cli.trace.queries").add(queries);
    metrics::registry().counter("cli.trace.reachable").add(reachable);
  }
  {
    auto sssp_span = tracer.span("reference-sssp");
    (void)sssp_distances(g, 0);
  }

  out << "graph " << *file << ": n=" << g.num_vertices() << " m=" << g.num_edges()
      << "; PLL avg=" << labels.average_label_size() << "\n\nphases:\n";
  tracer.write_tree(out);
  out << "\nmetrics:\n";
  metrics::registry().dump(out);

  if (const auto chrome = args.option("--chrome")) {
    std::ofstream chrome_out(*chrome);
    if (!chrome_out) throw Error("trace: cannot write " + *chrome);
    tracer.write_chrome_trace(chrome_out);
    chrome_out << '\n';
    out << "\nchrome trace written to " << *chrome << "\n";
  }
  return 0;
}

/// Validate BENCH_*.json / SERVE_*.json files against the run-report
/// schema.  Exit codes: 0 all valid, 1 schema/parse violation, 2 unreadable
/// file (io wins when both occur).  --quiet prints failures only.
int cmd_validate_bench(Args& args, std::ostream& out) {
  const bool quiet = args.flag("--quiet");
  std::vector<std::string> files;
  while (const auto f = args.next_positional()) files.push_back(*f);
  if (files.empty()) {
    throw InvalidArgument("validate-bench: usage: validate-bench [--quiet] FILE...");
  }
  bool any_invalid = false;
  bool any_unreadable = false;
  for (const std::string& file : files) {
    std::ifstream in(file);
    if (!in) {
      out << file << ": UNREADABLE\n";
      any_unreadable = true;
      continue;
    }
    std::ostringstream text;
    text << in.rdbuf();
    std::vector<std::string> errors;
    try {
      const JsonValue doc = parse_json(text.str());
      errors = validate_bench_json(doc);
    } catch (const Error& e) {
      errors.push_back(std::string("parse error: ") + e.what());
    }
    if (errors.empty()) {
      if (!quiet) out << file << ": ok\n";
    } else {
      any_invalid = true;
      out << file << ": INVALID\n";
      for (const std::string& e : errors) out << "  " << e << "\n";
    }
  }
  if (any_unreadable) return 2;
  return any_invalid ? 1 : 0;
}

/// Closed-loop query-serving simulation (see oracle/serve.hpp): build one
/// oracle, drive a synthetic workload, report latency quantiles, and emit a
/// SERVE_<oracle>.json run report plus an optional Prometheus text dump.
int cmd_serve_sim(Args& args, std::ostream& out) {
  const auto file = args.next_positional();
  if (!file) {
    throw InvalidArgument(
        "serve-sim: usage: serve-sim GRAPH [--oracle pll|pll-flat|ch|bidij] "
        "[--workload uniform|zipf|near|far] [--queries N] [--warmup N] [--seed N] "
        "[--threads N] [--batch N] [--bp-roots N] [--slow-query-ms MS] [--window-ms MS] "
        "[--smoke] [--perf-counters] [--json-out FILE] [--prom-out FILE]");
  }
  serve::SimConfig config;
  if (const auto o = args.option("--oracle")) {
    const auto kind = serve::parse_oracle_kind(*o);
    if (!kind) {
      throw InvalidArgument("serve-sim: unknown oracle: " + *o + " (pll|pll-flat|ch|bidij)");
    }
    config.oracle = *kind;
  }
  if (const auto w = args.option("--workload")) {
    const auto kind = serve::parse_workload_kind(*w);
    if (!kind) {
      throw InvalidArgument("serve-sim: unknown workload: " + *w + " (uniform|zipf|near|far)");
    }
    config.workload = *kind;
  }
  const bool smoke = args.flag("--smoke");
  config.num_queries = args.option_u64("--queries", smoke ? 500 : 10000);
  config.warmup = args.option_u64("--warmup", 100);
  config.seed = args.option_u64("--seed", 1);
  config.threads = static_cast<std::size_t>(args.option_u64("--threads", 0));
  config.batch = static_cast<std::size_t>(args.option_u64("--batch", 1));
  if (config.batch == 0) throw InvalidArgument("serve-sim: --batch must be >= 1");
  config.bp_roots = static_cast<std::size_t>(args.option_u64("--bp-roots", kPllDefaultBpRoots));
  const double slow_ms = args.option_double("--slow-query-ms", 0.0);
  if (slow_ms < 0.0) throw InvalidArgument("serve-sim: --slow-query-ms must be >= 0");
  config.slow_query_ns = static_cast<std::uint64_t>(slow_ms * 1e6);
  const double window_ms = args.option_double("--window-ms", 1000.0);
  if (window_ms <= 0.0) throw InvalidArgument("serve-sim: --window-ms must be > 0");
  config.window_ns = static_cast<std::uint64_t>(window_ms * 1e6);

  if (args.flag("--perf-counters")) {
    perf::set_enabled(true);
    out << "perf counters: " << perf::describe() << "\n";
  }

  const Graph g = io::load_edge_list(*file);
  metrics::registry().reset();
  Tracer tracer;
  const serve::SimResult result = serve::run_sim(g, config, &tracer);
  metrics::registry()
      .gauge("proc.peak_rss_bytes")
      .set(static_cast<std::int64_t>(peak_rss_bytes()));

  const QuantileSketch& lat = result.latency_ns;
  out << "serve-sim " << *file << ": oracle=" << result.oracle_name
      << " workload=" << result.workload_name << " threads=" << result.threads
      << " batch=" << config.batch << " queries=" << result.queries
      << " reachable=" << result.reachable << "\n";
  out << "  build_s=" << result.build_s << " space_bytes=" << result.space_bytes
      << " space_bytes_flat=" << result.space_bytes_flat
      << " query_loop_s=" << result.query_loop_s << "\n";
  out << "  latency_ns: p50=" << lat.quantile(0.5) << " p90=" << lat.quantile(0.9)
      << " p99=" << lat.quantile(0.99) << " p999=" << lat.quantile(0.999)
      << " max=" << lat.max() << " (rank error <= " << lat.rank_error_bound() << ")\n";
  out << "  workers=" << result.worker_busy_ns.size()
      << " utilization_pct=" << result.worker_utilization_pct << "\n";
  out << "  windows=" << result.windows.size()
      << " slow_queries=" << result.slow_queries.total_slow()
      << " exemplars=" << result.exemplars.count() << "\n";
  if (result.hw.valid) {
    out << "  hw: ipc=" << result.hw.ipc() << " llc_miss_rate=" << result.hw.llc_miss_rate()
        << " branch_miss_rate=" << result.hw.branch_miss_rate() << "\n";
  }

  const std::string json_path =
      args.option("--json-out")
          .value_or("SERVE_" + std::string(serve::oracle_kind_name(config.oracle)) + ".json");
  {
    std::ofstream json(json_path);
    if (!json) throw Error("serve-sim: cannot write " + json_path);
    serve::write_serve_report_json(json, result, config, g, *file, HUBLAB_GIT_REV, smoke, tracer);
    // An open() that succeeded can still lose the payload (full disk,
    // /dev/full, directory swept away mid-run) — flush and re-check before
    // claiming success.
    json.flush();
    if (!json) throw Error("serve-sim: cannot write " + json_path);
  }
  out << "serve JSON written to " << json_path << "\n";

  if (const auto prom = args.option("--prom-out")) {
    std::ofstream prom_out(*prom);
    if (!prom_out) throw Error("serve-sim: cannot write " + *prom);
    write_prometheus_text(metrics::registry(), prom_out);
    prom_out.flush();
    if (!prom_out) throw Error("serve-sim: cannot write " + *prom);
    out << "prometheus dump written to " << *prom << "\n";
  }
  return 0;
}

/// Open-loop concurrent query server (see oracle/server.hpp): build one
/// oracle, generate a scheduled arrival stream at the offered --qps, serve
/// it through per-worker SPSC rings feeding the batched kernel, and report
/// arrival-to-completion latency, shed counts, and (with --qps-sweep) the
/// whole throughput-vs-latency ladder in one SERVE_open_<oracle>.json.
int cmd_serve(Args& args, std::ostream& out) {
  const auto file = args.next_positional();
  if (!file) {
    throw InvalidArgument(
        "serve: usage: serve GRAPH [--oracle pll|pll-flat|ch|bidij] "
        "[--workload uniform|zipf|near|far] [--queries N] [--seed N] [--workers N] "
        "[--qps RATE] [--qps-sweep R1,R2,...] [--arrival poisson|burst] [--burst N] "
        "[--admission shed|block] [--ring N] [--batch N] [--timing wall|virtual] "
        "[--virtual-service-ns N] [--warmup-ms MS] [--cooldown-ms MS] [--slow-query-ms MS] "
        "[--window-ms MS] [--bp-roots N] [--smoke] [--perf-counters] "
        "[--json-out FILE] [--prom-out FILE]");
  }
  serve::ServerConfig config;
  if (const auto o = args.option("--oracle")) {
    const auto kind = serve::parse_oracle_kind(*o);
    if (!kind) {
      throw InvalidArgument("serve: unknown oracle: " + *o + " (pll|pll-flat|ch|bidij)");
    }
    config.oracle = *kind;
  }
  if (const auto w = args.option("--workload")) {
    const auto kind = serve::parse_workload_kind(*w);
    if (!kind) {
      throw InvalidArgument("serve: unknown workload: " + *w + " (uniform|zipf|near|far)");
    }
    config.workload = *kind;
  }
  if (const auto a = args.option("--arrival")) {
    const auto kind = serve::parse_arrival_kind(*a);
    if (!kind) throw InvalidArgument("serve: unknown arrival: " + *a + " (poisson|burst)");
    config.arrival = *kind;
  }
  if (const auto a = args.option("--admission")) {
    const auto policy = serve::parse_admission_policy(*a);
    if (!policy) throw InvalidArgument("serve: unknown admission: " + *a + " (shed|block)");
    config.admission = *policy;
  }
  if (const auto m = args.option("--timing")) {
    const auto mode = serve::parse_timing_mode(*m);
    if (!mode) throw InvalidArgument("serve: unknown timing: " + *m + " (wall|virtual)");
    config.timing = *mode;
  }
  const bool smoke = args.flag("--smoke");
  config.num_queries = args.option_u64("--queries", smoke ? 2000 : 20000);
  config.seed = args.option_u64("--seed", 1);
  config.workers = static_cast<std::size_t>(args.option_u64("--workers", 4));
  config.qps = args.option_double("--qps", config.qps);
  if (!(config.qps > 0.0)) throw InvalidArgument("serve: --qps must be > 0");
  config.burst = args.option_u64("--burst", config.burst);
  config.ring_capacity = static_cast<std::size_t>(
      args.option_u64("--ring", config.ring_capacity));
  config.batch = static_cast<std::size_t>(args.option_u64("--batch", config.batch));
  config.virtual_service_ns =
      args.option_u64("--virtual-service-ns", config.virtual_service_ns);
  config.warmup_ms = args.option_u64("--warmup-ms", config.warmup_ms);
  config.cooldown_ms = args.option_u64("--cooldown-ms", config.cooldown_ms);
  config.bp_roots = static_cast<std::size_t>(args.option_u64("--bp-roots", kPllDefaultBpRoots));
  const double slow_ms = args.option_double("--slow-query-ms", 0.0);
  if (slow_ms < 0.0) throw InvalidArgument("serve: --slow-query-ms must be >= 0");
  config.slow_query_ns = static_cast<std::uint64_t>(slow_ms * 1e6);
  const double window_ms = args.option_double("--window-ms", 1000.0);
  if (window_ms <= 0.0) throw InvalidArgument("serve: --window-ms must be > 0");
  config.window_ns = static_cast<std::uint64_t>(window_ms * 1e6);

  // The offered-load ladder: the base --qps alone, or every comma-separated
  // rate of --qps-sweep (the report's `sweep` array; the last point is the
  // one the full report describes).
  std::vector<double> ladder;
  if (const auto sweep_arg = args.option("--qps-sweep")) {
    std::stringstream ss(*sweep_arg);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      if (tok.empty()) continue;
      double rate = 0.0;
      try {
        rate = std::stod(tok);
      } catch (const std::exception&) {
        throw InvalidArgument("serve: bad --qps-sweep entry: " + tok);
      }
      if (!(rate > 0.0)) throw InvalidArgument("serve: --qps-sweep rates must be > 0");
      ladder.push_back(rate);
    }
    if (ladder.empty()) throw InvalidArgument("serve: --qps-sweep has no rates");
  } else {
    ladder.push_back(config.qps);
  }

  if (args.flag("--perf-counters")) {
    perf::set_enabled(true);
    out << "perf counters: " << perf::describe() << "\n";
  }

  const Graph g = io::load_edge_list(*file);
  Tracer tracer;
  // Build once, serve every ladder point against the same oracle.
  std::unique_ptr<DistanceOracle> oracle;
  double build_s = 0.0;
  {
    auto span = tracer.span("build-oracle");
    Timer build_timer;
    serve::SimConfig build_config;
    build_config.oracle = config.oracle;
    build_config.bp_roots = config.bp_roots;
    build_config.threads = config.workers;
    oracle = serve::make_oracle(g, build_config);
    build_s = build_timer.elapsed_s();
  }

  std::vector<serve::SweepPoint> sweep;
  serve::ServerResult result;
  for (const double qps : ladder) {
    config.qps = qps;
    // Each point gets a clean registry so the final report (and any
    // --prom-out dump) reflects the last point, not a sum over the ladder.
    metrics::registry().reset();
    result = serve::run_server_on(g, *oracle, config, &tracer);
    sweep.push_back({qps, result.achieved_qps, result.completed, result.rejected,
                     result.latency_ns.quantile(0.5), result.latency_ns.quantile(0.99)});
    if (ladder.size() > 1) {
      out << "  sweep qps=" << qps << ": achieved=" << result.achieved_qps
          << " completed=" << result.completed << " rejected=" << result.rejected
          << " p50_ns=" << result.latency_ns.quantile(0.5)
          << " p99_ns=" << result.latency_ns.quantile(0.99) << "\n";
    }
  }
  result.build_s = build_s;
  metrics::registry()
      .gauge("proc.peak_rss_bytes")
      .set(static_cast<std::int64_t>(peak_rss_bytes()));

  const QuantileSketch& lat = result.latency_ns;
  out << "serve " << *file << ": oracle=" << result.oracle_name
      << " workload=" << result.workload_name << " workers=" << result.workers
      << " batch=" << config.batch << " admission="
      << serve::admission_policy_name(config.admission)
      << " timing=" << serve::timing_mode_name(config.timing) << "\n";
  out << "  offered=" << result.offered << " (qps=" << result.offered_qps
      << ") completed=" << result.completed << " rejected=" << result.rejected
      << " achieved_qps=" << result.achieved_qps << "\n";
  out << "  latency_ns: p50=" << lat.quantile(0.5) << " p90=" << lat.quantile(0.9)
      << " p99=" << lat.quantile(0.99) << " p999=" << lat.quantile(0.999)
      << " max=" << lat.max() << " (rank error <= " << lat.rank_error_bound() << ")\n";
  out << "  queue_depth: p50=" << result.queue_depth.quantile(0.5)
      << " p99=" << result.queue_depth.quantile(0.99)
      << " max=" << result.queue_depth.max() << "\n";
  out << "  trimmed: warmup=" << result.trimmed_warmup
      << " cooldown=" << result.trimmed_cooldown
      << " utilization_pct=" << result.worker_utilization_pct << "\n";
  out << "  build_s=" << result.build_s << " space_bytes=" << result.space_bytes
      << " serve_loop_s=" << result.serve_loop_s << "\n";
  if (result.hw.valid) {
    out << "  hw: ipc=" << result.hw.ipc() << " llc_miss_rate=" << result.hw.llc_miss_rate()
        << " branch_miss_rate=" << result.hw.branch_miss_rate() << "\n";
  }

  const std::string json_path =
      args.option("--json-out")
          .value_or("SERVE_open_" + std::string(serve::oracle_kind_name(config.oracle)) +
                    ".json");
  {
    std::ofstream json(json_path);
    if (!json) throw Error("serve: cannot write " + json_path);
    serve::write_server_report_json(json, result, config, sweep, g, *file, HUBLAB_GIT_REV,
                                    smoke, tracer);
    json.flush();
    if (!json) throw Error("serve: cannot write " + json_path);
  }
  out << "serve JSON written to " << json_path << "\n";

  if (const auto prom = args.option("--prom-out")) {
    std::ofstream prom_out(*prom);
    if (!prom_out) throw Error("serve: cannot write " + *prom);
    write_prometheus_text(metrics::registry(), prom_out);
    prom_out.flush();
    if (!prom_out) throw Error("serve: cannot write " + *prom);
    out << "prometheus dump written to " << *prom << "\n";
  }
  return 0;
}

/// Single-query attribution breakdown (docs/observability.md "Attributing
/// tail latency"): build the chosen oracle, answer one s-t query through
/// the QueryStats probe, and print label sizes, hubs scanned vs pruned,
/// the meeting hub, and per-phase wall times.  The answer is cross-checked
/// against a bidirectional-Dijkstra reference and against the batched
/// query kernel on the active ISA tier; exit 0 iff all three agree.
int cmd_explain(Args& args, std::ostream& out) {
  const auto graph_file = args.next_positional();
  const auto s_str = args.next_positional();
  const auto t_str = args.next_positional();
  if (!graph_file || !s_str || !t_str) {
    throw InvalidArgument(
        "explain: usage: explain GRAPH S T [--oracle pll|pll-flat|ch|bidij] "
        "[--seed N] [--threads N] [--bp-roots N]");
  }
  serve::SimConfig config;
  if (const auto o = args.option("--oracle")) {
    const auto kind = serve::parse_oracle_kind(*o);
    if (!kind) {
      throw InvalidArgument("explain: unknown oracle: " + *o + " (pll|pll-flat|ch|bidij)");
    }
    config.oracle = *kind;
  }
  config.seed = args.option_u64("--seed", 1);
  config.threads = static_cast<std::size_t>(args.option_u64("--threads", 0));
  config.bp_roots = static_cast<std::size_t>(args.option_u64("--bp-roots", kPllDefaultBpRoots));

  const std::uint64_t t0 = monotonic_ns();
  const Graph g = io::load_edge_list(*graph_file);
  const std::uint64_t t_loaded = monotonic_ns();
  const auto s = static_cast<Vertex>(parse_u64(*s_str, "S"));
  const auto t = static_cast<Vertex>(parse_u64(*t_str, "T"));
  if (s >= g.num_vertices() || t >= g.num_vertices()) {
    throw InvalidArgument("explain: vertex out of range");
  }

  const std::unique_ptr<DistanceOracle> oracle = serve::make_oracle(g, config);
  const std::uint64_t t_built = monotonic_ns();

  metrics::QueryStats probe;
  const Dist dist = oracle->distance_with_stats(s, t, probe);
  const std::uint64_t t_queried = monotonic_ns();
  const Dist reference = bidirectional_distance(g, s, t);
  const bool agree = dist == reference;

  // Batched-kernel cross-check: the same pair through distance_batch must
  // produce the same distance on the active ISA tier (byte-identity is the
  // kernel's contract; see docs/performance.md "The batched query kernel").
  const std::pair<Vertex, Vertex> batch_pair[1] = {{s, t}};
  HubQueryResult batch_answer[1];
  oracle->distance_batch(std::span<const std::pair<Vertex, Vertex>>(batch_pair),
                         std::span<HubQueryResult>(batch_answer));
  const bool batch_agree = batch_answer[0].dist == dist;

  out << "explain " << *graph_file << ": oracle=" << oracle->name() << " s=" << s << " t=" << t
      << "\n";
  out << "  dist = ";
  if (dist == kInfDist) out << "inf";
  else out << dist;
  out << " (dijkstra ";
  if (reference == kInfDist) out << "inf";
  else out << reference;
  out << ", agree=" << (agree ? "yes" : "NO") << ")\n";
  out << "  meeting_hub = ";
  if (probe.meeting_hub() == metrics::kNoMeetingHub) out << "none";
  else out << probe.meeting_hub();
  out << "\n";
  out << "  labels: |L(s)|=" << probe.label_size_s() << " |L(t)|=" << probe.label_size_t() << "\n";
  out << "  hubs: scanned=" << probe.hubs_scanned() << " matched=" << probe.hubs_matched()
      << " pruned=" << probe.hubs_pruned() << "\n";
  out << "  batch kernel: tier=" << simd::tier_name(simd::active_tier())
      << " agree=" << (batch_agree ? "yes" : "NO") << "\n";
  out << "  phase_ns: load=" << (t_loaded - t0) << " build=" << (t_built - t_loaded)
      << " query=" << (t_queried - t_built) << "\n";
  if (!metrics::QueryStats::kEnabled) {
    out << "  (attribution counters compiled out: HUBLAB_METRICS=OFF)\n";
  }

  auto& reg = metrics::registry();
  reg.counter("explain.queries").add(1);
  reg.gauge("explain.query_ns").set(static_cast<std::int64_t>(t_queried - t_built));
  reg.gauge("explain.hubs_scanned").set(static_cast<std::int64_t>(probe.hubs_scanned()));
  reg.gauge("explain.hubs_matched").set(static_cast<std::int64_t>(probe.hubs_matched()));
  reg.gauge("explain.label_size_s").set(static_cast<std::int64_t>(probe.label_size_s()));
  reg.gauge("explain.label_size_t").set(static_cast<std::int64_t>(probe.label_size_t()));
  return (agree && batch_agree) ? 0 : 1;
}

/// Regression-diff two run reports (see util/bench_compare.hpp).  Exit
/// codes: 0 no regression, 1 regression past threshold or schema
/// violation, 2 unreadable input.
int cmd_bench_compare(Args& args, std::ostream& out) {
  const auto base_path = args.next_positional();
  const auto next_path = args.next_positional();
  if (!base_path || !next_path) {
    throw InvalidArgument(
        "bench-compare: usage: bench-compare BASE.json NEW.json [--threshold PCT] "
        "[--structural-threshold PCT] [--min-wall-s S] [--all]");
  }
  CompareOptions options;
  options.threshold_pct = args.option_double("--threshold", options.threshold_pct);
  options.structural_threshold_pct =
      args.option_double("--structural-threshold", options.structural_threshold_pct);
  options.min_wall_s = args.option_double("--min-wall-s", options.min_wall_s);

  JsonValue docs[2];
  const std::string* paths[2] = {&*base_path, &*next_path};
  for (int i = 0; i < 2; ++i) {
    std::ifstream in(*paths[i]);
    if (!in) {
      out << *paths[i] << ": UNREADABLE\n";
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
      docs[i] = parse_json(text.str());
    } catch (const Error& e) {
      out << *paths[i] << ": parse error: " << e.what() << "\n";
      return 1;
    }
  }

  const CompareReport report = compare_bench_json(docs[0], docs[1], options);
  write_compare_table(out, report, args.flag("--all"));
  return report.ok() ? 0 : 1;
}

/// `profile [--hz N] [--folded FILE] <command...>`: run any other hublab
/// subcommand under the sampling profiler (util/profiler.hpp) and write
/// the folded stacks when it returns.  Where SIGPROF sampling is
/// unsupported, the wrapped command still runs (unprofiled) — same
/// degrade-to-working contract as the hardware counters.
int cmd_profile(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  prof::ProfilerConfig config;
  std::string folded_path = "hublab_profile.folded";
  std::size_t i = 0;
  while (i < args.size()) {
    if (args[i] == "--hz" && i + 1 < args.size()) {
      config.hz = parse_u64(args[i + 1], "--hz");
      i += 2;
    } else if (args[i] == "--folded" && i + 1 < args.size()) {
      folded_path = args[i + 1];
      i += 2;
    } else {
      break;
    }
  }
  if (i >= args.size()) {
    throw InvalidArgument("profile: usage: profile [--hz N] [--folded FILE] <command...>");
  }
  if (args[i] == "profile") throw InvalidArgument("profile: cannot nest profile");

  prof::reset();
  const bool armed = prof::start(config);
  if (!armed) out << "profiler: unsupported here; running the command unprofiled\n";
  const int code = run(std::vector<std::string>(args.begin() + static_cast<std::ptrdiff_t>(i),
                                                args.end()),
                       out, err);
  if (armed) {
    prof::stop();
    std::ofstream folded(folded_path);
    if (!folded) throw Error("profile: cannot write " + folded_path);
    prof::write_folded(folded);
    out << "profile: " << prof::samples() << " samples (" << prof::dropped()
        << " dropped), folded stacks written to " << folded_path << "\n";
  }
  return code;
}

}  // namespace

int run(const std::vector<std::string>& args, std::ostream& out, std::ostream& err) {
  // Always-on post-mortem: any crash below (or in a worker thread) dumps
  // the flight-recorder rings before the default disposition runs.
  fr::install_crash_handler();
  if (args.empty()) {
    err << "usage: hublab "
           "<gen|stats|label|query|explain|verify|certify-gadget|sumindex|trace|serve-sim|"
           "serve|profile|validate-bench|bench-compare> ...\n";
    return 2;
  }
  Args rest(std::vector<std::string>(args.begin() + 1, args.end()));
  try {
    if (args[0] == "profile") {
      return cmd_profile(std::vector<std::string>(args.begin() + 1, args.end()), out, err);
    }
    if (args[0] == "gen") return cmd_gen(rest, out);
    if (args[0] == "stats") return cmd_stats(rest, out);
    if (args[0] == "label") return cmd_label(rest, out);
    if (args[0] == "query") return cmd_query(rest, out);
    if (args[0] == "verify") return cmd_verify(rest, out);
    if (args[0] == "certify-gadget") return cmd_certify_gadget(rest, out);
    if (args[0] == "sumindex") return cmd_sumindex(rest, out);
    if (args[0] == "trace") return cmd_trace(rest, out);
    if (args[0] == "serve-sim") return cmd_serve_sim(rest, out);
    if (args[0] == "serve") return cmd_serve(rest, out);
    if (args[0] == "explain") return cmd_explain(rest, out);
    if (args[0] == "validate-bench") return cmd_validate_bench(rest, out);
    if (args[0] == "bench-compare") return cmd_bench_compare(rest, out);
    err << "unknown command: " << args[0] << "\n";
    return 2;
  } catch (const Error& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace hublab::cli
