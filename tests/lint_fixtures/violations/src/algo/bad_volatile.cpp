// Fixture: volatile-sync -- volatile used as a poor man's flag.

namespace fixture {

volatile int g_flag = 0;

void raise() { g_flag = 1; }

}  // namespace fixture
