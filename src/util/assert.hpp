#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <type_traits>

/// \file assert.hpp
/// Invariant checking for hublab.
///
/// `HUBLAB_ASSERT` guards internal invariants (programming errors); it stays
/// enabled in all build types because this library's correctness claims are
/// the whole point of the reproduction.  User-input errors (bad files, bad
/// parameters) throw exceptions instead -- see util/error.hpp.
///
/// `HUBLAB_ASSERT_RANGE(i, n)` is the bounds-check variant: it prints both
/// the offending index and the bound on failure.  `HUBLAB_UNREACHABLE()`
/// marks control-flow paths the surrounding invariants rule out.

namespace hublab::fr {
// Flight-recorder breadcrumb (util/flightrec.cpp): the failing expression
// lands in the crash ring before abort() raises SIGABRT, so the recorder's
// dump shows *which* assert fired alongside the recent spans.  Declared
// here (not included) to keep this header dependency-free.
void note_assert_fail(const char* expr, const char* file, int line) noexcept;
}  // namespace hublab::fr

namespace hublab::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  ::hublab::fr::note_assert_fail(expr, file, line);
  // hublab-lint-allow(raw-io) (crash path; the logger may be unusable here)
  std::fprintf(stderr, "hublab assertion failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg != nullptr ? msg : "");
  std::abort();
}

[[noreturn]] inline void unreachable_fail(const char* file, int line) {
  ::hublab::fr::note_assert_fail("HUBLAB_UNREACHABLE", file, line);
  // hublab-lint-allow(raw-io) (crash path)
  std::fprintf(stderr, "hublab reached unreachable code\n  at %s:%d\n", file, line);
  std::abort();
}

[[noreturn]] inline void range_fail(const char* index_expr, const char* bound_expr,
                                    std::uint64_t index, std::uint64_t bound, bool negative,
                                    const char* file, int line) {
  ::hublab::fr::note_assert_fail(index_expr, file, line);
  if (negative) {
    // hublab-lint-allow(raw-io) (crash path)
    std::fprintf(stderr,
                 "hublab bounds check failed: %s < %s\n  at %s:%d\n  index %s is negative "
                 "(-%llu), bound is %llu\n",
                 index_expr, bound_expr, file, line, index_expr,
                 static_cast<unsigned long long>(index), static_cast<unsigned long long>(bound));
  } else {
    // hublab-lint-allow(raw-io) (crash path)
    std::fprintf(stderr,
                 "hublab bounds check failed: %s < %s\n  at %s:%d\n  index is %llu, bound is "
                 "%llu\n",
                 index_expr, bound_expr, file, line, static_cast<unsigned long long>(index),
                 static_cast<unsigned long long>(bound));
  }
  std::abort();
}

/// Bounds check `0 <= index < bound` that works for any mix of signed and
/// unsigned integer operands without conversion surprises.
template <typename I, typename N>
constexpr void check_range(I index, N bound, const char* index_expr, const char* bound_expr,
                           const char* file, int line) {
  static_assert(std::is_integral_v<I> && std::is_integral_v<N>,
                "HUBLAB_ASSERT_RANGE needs integral operands");
  if constexpr (std::is_signed_v<I>) {
    if (index < 0) {
      range_fail(index_expr, bound_expr, static_cast<std::uint64_t>(-(index + 1)) + 1,
                 static_cast<std::uint64_t>(bound), true, file, line);
    }
  }
  if (static_cast<std::uint64_t>(index) >= static_cast<std::uint64_t>(bound)) {
    range_fail(index_expr, bound_expr, static_cast<std::uint64_t>(index),
               static_cast<std::uint64_t>(bound), false, file, line);
  }
}

}  // namespace hublab::detail

#define HUBLAB_ASSERT(expr)                                                  \
  do {                                                                       \
    if (!(expr)) ::hublab::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (false)

#define HUBLAB_ASSERT_MSG(expr, msg)                                         \
  do {                                                                       \
    if (!(expr)) ::hublab::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

/// Assert 0 <= index < bound; the failure message reports both values.
#define HUBLAB_ASSERT_RANGE(index, bound) \
  ::hublab::detail::check_range((index), (bound), #index, #bound, __FILE__, __LINE__)

/// Mark a path that the surrounding invariants make impossible.
#define HUBLAB_UNREACHABLE() ::hublab::detail::unreachable_fail(__FILE__, __LINE__)
