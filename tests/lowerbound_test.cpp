#include <gtest/gtest.h>

#include "algo/distance_matrix.hpp"
#include "algo/shortest_paths.hpp"
#include "graph/transforms.hpp"
#include "hub/pll.hpp"
#include "lowerbound/certify.hpp"
#include "lowerbound/gadget.hpp"
#include "util/error.hpp"

namespace hublab::lb {
namespace {

TEST(GadgetParams, Arithmetic) {
  const GadgetParams p{2, 2};
  EXPECT_EQ(p.s(), 4u);
  EXPECT_EQ(p.num_levels(), 5u);
  EXPECT_EQ(p.layer_size(), 16u);
  EXPECT_EQ(p.base_weight(), 96u);  // 3 * 2 * 16
  EXPECT_EQ(p.num_h_vertices(), 80u);
  EXPECT_EQ(p.num_triplets(), 16u * 4u);
  EXPECT_EQ(p.hop_diameter_bound(), 8u);
}

TEST(GadgetParams, ValidationRejectsDegenerate) {
  EXPECT_THROW((GadgetParams{0, 1}.validate()), hublab::InvalidArgument);
  EXPECT_THROW((GadgetParams{1, 0}.validate()), hublab::InvalidArgument);
  EXPECT_THROW((GadgetParams{16, 16}.validate()), hublab::InvalidArgument);  // too large
}

TEST(LayeredGadget, StructureB1L1) {
  const LayeredGadget h(GadgetParams{1, 1});
  // s=2, layers of 2 vertices, 3 levels => 6 vertices; edges 2*1*2*2 = ...
  EXPECT_EQ(h.graph().num_vertices(), 6u);
  // Each level transition: layer * s = 2*2 = 4 edges, two transitions.
  EXPECT_EQ(h.graph().num_edges(), 8u);
  EXPECT_TRUE(h.graph().is_weighted());
}

TEST(LayeredGadget, VertexIndexRoundTrip) {
  const LayeredGadget h(GadgetParams{2, 3});
  for (std::uint64_t idx = 0; idx < h.params().layer_size(); idx += 7) {
    const Coords c = h.index_to_coords(idx);
    EXPECT_EQ(h.coords_to_index(c), idx);
    const Vertex v = h.vertex(3, idx);
    EXPECT_EQ(h.level_of(v), 3u);
    EXPECT_EQ(h.index_of(v), idx);
  }
}

TEST(LayeredGadget, EveryInternalVertexHasSNeighborsEachWay) {
  const GadgetParams p{2, 2};
  const LayeredGadget h(p);
  const Graph& g = h.graph();
  for (std::uint64_t idx = 0; idx < p.layer_size(); ++idx) {
    EXPECT_EQ(g.degree(h.vertex(0, idx)), p.s());
    EXPECT_EQ(g.degree(h.vertex(2, idx)), 2 * p.s());
    EXPECT_EQ(g.degree(h.vertex(4, idx)), p.s());
  }
}

TEST(LayeredGadget, WeightsInDocumentedRange) {
  const GadgetParams p{2, 2};
  const LayeredGadget h(p);
  const Graph& g = h.graph();
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    for (const Arc& a : g.arcs(u)) {
      EXPECT_GE(a.weight, p.base_weight());
      EXPECT_LE(a.weight, p.max_edge_weight());
    }
  }
}

TEST(LayeredGadget, EdgesOnlyBetweenAdjacentLevels) {
  const LayeredGadget h(GadgetParams{2, 2});
  const Graph& g = h.graph();
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    for (const Arc& a : g.arcs(u)) {
      const auto lu = h.level_of(u);
      const auto lv = h.level_of(a.to);
      EXPECT_EQ(1u, lu > lv ? lu - lv : lv - lu);
    }
  }
}

TEST(LayeredGadget, EdgesChangeOnlyOneCoordinate) {
  const LayeredGadget h(GadgetParams{2, 2});
  const Graph& g = h.graph();
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    const Coords cu = h.index_to_coords(h.index_of(u));
    for (const Arc& a : g.arcs(u)) {
      const Coords cv = h.index_to_coords(h.index_of(a.to));
      int changed = 0;
      for (std::size_t k = 0; k < cu.size(); ++k) {
        if (cu[k] != cv[k]) ++changed;
      }
      EXPECT_LE(changed, 1);
    }
  }
}

TEST(Lemma22, Figure1BluePath) {
  // Figure 1 of the paper: b = l = 2, x = (1,0), z = (3,2).
  // The unique shortest path has length 4A + 4 and passes through v_{2,(2,1)}.
  const GadgetParams p{2, 2};
  const LayeredGadget h(p);
  const Coords x{1, 0};
  const Coords z{3, 2};
  ASSERT_TRUE(LayeredGadget::all_diffs_even(x, z));
  const Dist predicted = h.predicted_distance(x, z);
  EXPECT_EQ(predicted, 4u * p.base_weight() + 4u);  // 4A + 4 = 388

  const Vertex src = h.vertex_at(0, x);
  const Vertex dst = h.vertex_at(4, z);
  const SsspResult tree = dijkstra(h.graph(), src);
  EXPECT_EQ(tree.dist[dst], predicted);

  const auto counts = count_shortest_paths(h.graph(), src, tree.dist);
  EXPECT_EQ(counts[dst], 1u);

  const auto path = extract_path(tree, src, dst);
  const Vertex mid = h.predicted_midpoint(x, z);
  EXPECT_EQ(mid, h.vertex_at(2, Coords{2, 1}));
  EXPECT_NE(std::find(path.begin(), path.end(), mid), path.end());
}

TEST(Lemma22, RedPathIsLonger) {
  // The red path of Figure 1 (going through v_{2,(3,2)}) has length 4A + 8.
  const GadgetParams p{2, 2};
  const LayeredGadget h(p);
  // Direct route x -> (3,0) at level1? Construct explicitly: change coord 0
  // fully on the way up (delta 2), coord 1 fully (delta 2), then deltas 0.
  const std::vector<Vertex> red{
      h.vertex_at(0, Coords{1, 0}), h.vertex_at(1, Coords{3, 0}), h.vertex_at(2, Coords{3, 2}),
      h.vertex_at(3, Coords{3, 2}), h.vertex_at(4, Coords{3, 2})};
  EXPECT_EQ(path_length(h.graph(), red), 4u * p.base_weight() + 8u);
}

class Lemma22Sweep : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {};

TEST_P(Lemma22Sweep, HoldsOnH) {
  const auto [b, ell] = GetParam();
  const LayeredGadget h(GadgetParams{b, ell});
  const Lemma22Report report = verify_lemma_2_2(h);
  EXPECT_TRUE(report.ok()) << "mismatches=" << report.distance_mismatches
                           << " nonunique=" << report.non_unique_paths
                           << " midmiss=" << report.midpoint_misses;
  const GadgetParams params{b, ell};
  EXPECT_EQ(report.pairs_checked, params.num_triplets());
}

INSTANTIATE_TEST_SUITE_P(Params, Lemma22Sweep,
                         ::testing::Values(std::make_pair(1u, 1u), std::make_pair(2u, 1u),
                                           std::make_pair(1u, 2u), std::make_pair(2u, 2u),
                                           std::make_pair(3u, 1u), std::make_pair(1u, 3u),
                                           std::make_pair(3u, 2u), std::make_pair(2u, 3u)));

TEST(Degree3Gadget, MaxDegreeIsThree) {
  const LayeredGadget h(GadgetParams{2, 1});
  const Degree3Gadget g3(h);
  EXPECT_LE(g3.graph().max_degree(), 3u);
  EXPECT_FALSE(g3.graph().is_weighted());
}

// The expansion preserves distances between H-vertices at *different*
// levels (that is what the paper claims and what Lemma 2.2 needs: the
// intermediate levels are vertex cuts).  Same-level pairs may shortcut
// through a shared in-/out-tree and come out up to 2 shorter -- see the
// SameLevelShortcut test below.
TEST(Degree3Gadget, PreservesCrossLevelDistances) {
  const GadgetParams p{1, 1};
  const LayeredGadget h(p);
  const Degree3Gadget g3(h);
  const auto mh = DistanceMatrix::compute(h.graph());
  for (Vertex u = 0; u < h.graph().num_vertices(); ++u) {
    const auto dg = sssp_distances(g3.graph(), g3.image(u));
    for (Vertex v = 0; v < h.graph().num_vertices(); ++v) {
      if (h.level_of(u) == h.level_of(v)) continue;
      EXPECT_EQ(dg[g3.image(v)], mh.at(u, v)) << u << " " << v;
    }
  }
}

TEST(Degree3Gadget, PreservesCrossLevelDistancesB2L1) {
  const GadgetParams p{2, 1};
  const LayeredGadget h(p);
  const Degree3Gadget g3(h);
  // Check distances from all level-0 originals (full check is slow).
  const auto mh = DistanceMatrix::compute(h.graph());
  for (std::uint64_t idx = 0; idx < p.layer_size(); ++idx) {
    const Vertex u = h.vertex(0, idx);
    const auto dg = sssp_distances(g3.graph(), g3.image(u));
    for (Vertex v = 0; v < h.graph().num_vertices(); ++v) {
      if (h.level_of(u) == h.level_of(v)) continue;
      EXPECT_EQ(dg[g3.image(v)], mh.at(u, v));
    }
  }
}

TEST(Degree3Gadget, SameLevelShortcutIsAtMostTwoB) {
  const GadgetParams p{2, 1};
  const LayeredGadget h(p);
  const Degree3Gadget g3(h);
  const auto mh = DistanceMatrix::compute(h.graph());
  bool saw_shortcut = false;
  for (Vertex u = 0; u < h.graph().num_vertices(); ++u) {
    const auto dg = sssp_distances(g3.graph(), g3.image(u));
    for (Vertex v = 0; v < h.graph().num_vertices(); ++v) {
      if (u == v || h.level_of(u) != h.level_of(v)) continue;
      const Dist in_g = dg[g3.image(v)];
      const Dist in_h = mh.at(u, v);
      EXPECT_LE(in_g, in_h);
      // Sibling leaves of a shared tree save up to 2b over routing through
      // the tree's owner.
      EXPECT_GE(in_g + 2 * p.b, in_h);
      if (in_g != in_h) saw_shortcut = true;
    }
  }
  EXPECT_TRUE(saw_shortcut);  // the phenomenon is real, not hypothetical
}

TEST(Degree3Gadget, PreimageRoundTrip) {
  const LayeredGadget h(GadgetParams{1, 1});
  const Degree3Gadget g3(h);
  for (Vertex v = 0; v < h.graph().num_vertices(); ++v) {
    const auto pre = g3.preimage(g3.image(v));
    ASSERT_TRUE(pre.has_value());
    EXPECT_EQ(*pre, v);
  }
  EXPECT_GT(g3.num_tree_vertices(), 0u);
  EXPECT_GT(g3.num_path_vertices(), 0u);
}

TEST(Degree3Gadget, Lemma22HoldsOnG) {
  const LayeredGadget h(GadgetParams{1, 1});
  const Degree3Gadget g3(h);
  const Lemma22Report report = verify_lemma_2_2_degree3(h, g3);
  EXPECT_TRUE(report.ok());
  EXPECT_GT(report.pairs_checked, 0u);
}

TEST(Degree3Gadget, Lemma22HoldsOnGB2L1) {
  const LayeredGadget h(GadgetParams{2, 1});
  const Degree3Gadget g3(h);
  EXPECT_TRUE(verify_lemma_2_2_degree3(h, g3).ok());
}

TEST(MaskedGadget, RemovedVertexIsIsolated) {
  const GadgetParams p{2, 1};
  std::vector<bool> removed(p.layer_size(), false);
  removed[1] = true;
  const LayeredGadget h(p, &removed);
  EXPECT_EQ(h.graph().degree(h.vertex(1, 1)), 0u);
  EXPECT_TRUE(h.midlevel_removed(1));
  EXPECT_FALSE(h.midlevel_removed(0));
}

TEST(MaskedGadget, RemovalIncreasesSomeDistance) {
  const GadgetParams p{2, 1};
  const LayeredGadget full(p);
  // Pick x = (0), z = (2): midpoint (1).  Remove midlevel index 1.
  const Coords x{0};
  const Coords z{2};
  std::vector<bool> removed(p.layer_size(), false);
  removed[full.predicted_midpoint(x, z) % p.layer_size()] = true;
  const LayeredGadget masked(p, &removed);

  const Dist before = dijkstra(full.graph(), full.vertex_at(0, x)).dist[full.vertex_at(2, z)];
  const Dist after = dijkstra(masked.graph(), masked.vertex_at(0, x)).dist[masked.vertex_at(2, z)];
  EXPECT_EQ(before, full.predicted_distance(x, z));
  EXPECT_GT(after, before);
}

TEST(MaskedGadget, UnaffectedPairsKeepDistance) {
  const GadgetParams p{2, 1};
  const LayeredGadget full(p);
  const Coords x{0};
  const Coords z{0};  // midpoint (0)
  std::vector<bool> removed(p.layer_size(), false);
  removed[3] = true;  // unrelated midlevel vertex
  const LayeredGadget masked(p, &removed);
  const Dist before = dijkstra(full.graph(), full.vertex_at(0, x)).dist[full.vertex_at(2, z)];
  const Dist after = dijkstra(masked.graph(), masked.vertex_at(0, x)).dist[masked.vertex_at(2, z)];
  EXPECT_EQ(before, after);
}

TEST(MaskedGadget, BadMaskSizeThrows) {
  const GadgetParams p{2, 1};
  std::vector<bool> removed(3, false);
  EXPECT_THROW(LayeredGadget(p, &removed), hublab::InvalidArgument);
}

TEST(CertifiedBound, FormulaBasics) {
  // T = 100 triplets, n = 10 vertices, hop diameter 3:
  // avg >= (100/10 - 1)/3 = 3.
  EXPECT_DOUBLE_EQ(certified_avg_hub_lower_bound(100, 10, 3), 3.0);
  EXPECT_DOUBLE_EQ(certified_avg_hub_lower_bound(5, 10, 3), 0.0);  // clamped
  EXPECT_DOUBLE_EQ(certified_avg_hub_lower_bound(100, 0, 3), 0.0);
}

TEST(CertifiedBound, AnyLabelingRespectsBound) {
  // The certified bound must hold for the PLL labeling of H.
  const GadgetParams p{2, 2};
  const LayeredGadget h(p);
  const HubLabeling pll = pruned_landmark_labeling(h.graph());
  const Dist hop_diam = diameter_exact(unweighted_copy(h.graph()));
  const double bound =
      certified_avg_hub_lower_bound(p.num_triplets(), p.num_h_vertices(), hop_diam);
  EXPECT_GE(pll.average_label_size(), bound);
}

TEST(CertifiedBound, ClosureAuditHolds) {
  const GadgetParams p{2, 2};
  const LayeredGadget h(p);
  const HubLabeling pll = pruned_landmark_labeling(h.graph());
  const ClosureAudit audit = audit_closure_bound(h.graph(), pll, p.num_triplets());
  EXPECT_TRUE(audit.ok()) << "closure " << audit.sum_closure << " < required "
                          << audit.required;
  EXPECT_GE(audit.sum_closure, audit.sum_labels);
}

TEST(CertifiedBound, ClosureAuditHoldsB3L1) {
  const GadgetParams p{3, 1};
  const LayeredGadget h(p);
  const HubLabeling pll = pruned_landmark_labeling(h.graph());
  const ClosureAudit audit = audit_closure_bound(h.graph(), pll, p.num_triplets());
  EXPECT_TRUE(audit.ok());
}

class MidpointRsSweep : public ::testing::TestWithParam<std::pair<std::uint32_t, std::uint32_t>> {};

TEST_P(MidpointRsSweep, RadiusClassesAreInducedMatchingPartitions) {
  // The Section 1.2 bridge: per-radius distance graphs of the gadget
  // partition into midpoint-indexed induced matchings (an RS structure).
  const auto [b, ell] = GetParam();
  const GadgetParams p{b, ell};
  const LayeredGadget h(p);
  const auto structures = midpoint_matching_structure(h);
  ASSERT_FALSE(structures.empty());

  std::uint64_t total_pairs = 0;
  for (const auto& rc : structures) {
    EXPECT_TRUE(is_valid_induced_partition(rc.bipartite, rc.partition))
        << "radius " << rc.radius;
    EXPECT_LE(rc.partition.num_matchings(), p.layer_size());
    total_pairs += rc.partition.num_edges();
  }
  // Every even-difference pair appears in exactly one radius class.
  EXPECT_EQ(total_pairs, p.num_triplets());
  // Radius 0 is the identity matching x -> x.
  EXPECT_EQ(structures.front().radius, 0u);
  EXPECT_EQ(structures.front().partition.num_edges(), p.layer_size());
}

INSTANTIATE_TEST_SUITE_P(Params, MidpointRsSweep,
                         ::testing::Values(std::make_pair(2u, 1u), std::make_pair(2u, 2u),
                                           std::make_pair(3u, 1u), std::make_pair(3u, 2u),
                                           std::make_pair(2u, 3u)));

TEST(MidpointRs, DistancesMatchRadiusClasses) {
  // Each edge of a radius-r class is a pair at distance exactly 2*l*A + 2r.
  const GadgetParams p{2, 2};
  const LayeredGadget h(p);
  const auto structures = midpoint_matching_structure(h);
  for (const auto& rc : structures) {
    for (const auto& matching : rc.partition.matchings) {
      for (const auto& [left, right] : matching) {
        const Vertex src = h.vertex(0, left);
        const Vertex dst = h.vertex(2ULL * p.ell, right - p.layer_size());
        const Dist d = dijkstra(h.graph(), src).dist[dst];
        EXPECT_EQ(d, 2ULL * p.ell * p.base_weight() + 2 * rc.radius);
      }
    }
  }
}

TEST(CertifiedBound, ConvenienceFormulas) {
  const GadgetParams p{3, 2};
  EXPECT_GT(certified_bound_h(p), 0.0);
  EXPECT_GE(certified_bound_h(p), certified_bound_g(p, p.num_h_vertices() * 100));
}

}  // namespace
}  // namespace hublab::lb
