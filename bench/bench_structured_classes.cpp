/// \file bench_structured_classes.cpp
/// Experiment for the Section 1.1 survey: hub labelings of structured
/// classes, making the paper's contrast concrete.
///
///   trees  -> Theta(log n) hubs   (centroid decomposition, [Pel00]-style)
///   grids  -> Theta(sqrt n) hubs  (recursive separators, [GPPR04]-style)
///   sparse -> n / 2^{Theta(sqrt(log n))}  (Theorems 1.1/1.4 -- the gap
///             this paper explains)
///
/// The tables print measured average label sizes next to the predicted
/// scale so the growth exponent is visible directly.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "algo/distance_matrix.hpp"
#include "graph/generators.hpp"
#include "hub/pll.hpp"
#include "hub/structured.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace hublab;

int main() {
  std::printf("Experiment STRUCT: hub labelings of trees and grids (Sec. 1.1 survey)\n");
  bool all_ok = true;

  TextTable trees({"n", "centroid avg", "centroid max", "log2 n", "max/log2 n", "exact"});
  for (const std::size_t n : {100u, 1000u, 10000u, 100000u}) {
    Rng rng(n);
    const Graph g = gen::random_tree(n, rng);
    const HubLabeling l = tree_centroid_labeling(g);
    const double lg = std::log2(static_cast<double>(n));
    bool exact = true;
    if (n <= 2000) {
      const auto truth = DistanceMatrix::compute(g);
      exact = !verify_labeling(g, l, truth).has_value();
    } else {
      exact = !verify_labeling_sampled(g, l, 200, 7).has_value();
    }
    all_ok = all_ok && exact;
    trees.add_row({fmt_u64(n), fmt_double(l.average_label_size(), 2),
                   fmt_u64(l.max_label_size()), fmt_double(lg, 1),
                   fmt_double(static_cast<double>(l.max_label_size()) / lg, 2),
                   exact ? "ok" : "FAIL"});
  }
  trees.print(std::cout, "random trees: centroid labels scale as log n (max/log2n stays ~1)");

  TextTable grids({"side", "n", "separator avg", "sqrt n", "avg/sqrt n", "PLL avg", "exact"});
  for (const std::size_t side : {8u, 16u, 24u, 32u, 48u}) {
    const Graph g = gen::grid(side, side);
    Timer timer;
    const HubLabeling l = grid_separator_labeling(g, side, side);
    const double rt = std::sqrt(static_cast<double>(g.num_vertices()));
    bool exact = true;
    std::string pll_avg = "-";
    if (g.num_vertices() <= 1200) {
      const auto truth = DistanceMatrix::compute(g);
      exact = !verify_labeling(g, l, truth).has_value();
      pll_avg = fmt_double(pruned_landmark_labeling(g).average_label_size(), 2);
    } else {
      exact = !verify_labeling_sampled(g, l, 100, 7).has_value();
    }
    all_ok = all_ok && exact;
    grids.add_row({fmt_u64(side), fmt_u64(g.num_vertices()),
                   fmt_double(l.average_label_size(), 2), fmt_double(rt, 1),
                   fmt_double(l.average_label_size() / rt, 2), pll_avg, exact ? "ok" : "FAIL"});
  }
  grids.print(std::cout, "square grids: separator labels scale as sqrt n (avg/sqrt n stays ~constant)");

  std::printf(
      "\nContrast: Theorem 1.1 shows sparse graphs in general sit at n/2^{Theta(sqrt(log n))} --\n"
      "exponentially worse than either structured class above.\n");
  std::printf("\nSTRUCT experiment: %s\n", all_ok ? "OK" : "MISMATCH");
  return all_ok ? 0 : 1;
}
