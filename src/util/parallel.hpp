#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

/// \file parallel.hpp
/// Deterministic data parallelism for the embarrassingly parallel layers
/// (per-source SSSP, labeling verification, the serve-sim query loop).
///
/// The design constraint is the determinism contract (docs/performance.md):
/// every result -- labels, defects, audit messages, report JSON modulo wall
/// times -- must be **bit-identical across thread counts**.  The primitives
/// here make that easy to honour:
///
///  - `static_chunks` splits an index range into contiguous chunks whose
///    boundaries depend only on the range and the chunk count, never on
///    scheduling;
///  - `parallel_for` runs one body per chunk (any thread may execute any
///    chunk) and callers write per-chunk results into pre-sized slots keyed
///    by `ChunkRange::index`, then reduce them *in chunk order* on the
///    calling thread;
///  - per-item work must not depend on chunk boundaries, so the chunk-order
///    reduction equals the sequential left-to-right reduction and the chunk
///    count (= thread count) drops out of the result.
///
/// Thread count resolution: an explicit request wins; 0 defers to the
/// `HUBLAB_THREADS` environment variable; absent/unparsable falls back
/// to 1, so all existing single-threaded callers are unchanged.  Workers
/// live in a lazily grown process-global pool (threads are recycled, not
/// respawned per loop); the calling thread participates, so `threads = 4`
/// means 3 pool workers plus the caller.  Nested `parallel_for` calls run
/// their body inline on the calling thread -- no deadlocks, same results.
///
/// This file is the only sanctioned owner of raw threading primitives in
/// src/ (hublab_lint's raw-thread rule): everything else expresses
/// parallelism through `parallel_for`.

namespace hublab::par {

/// One contiguous slice of an index range, plus its position in the chunk
/// sequence (the reduction key).
struct ChunkRange {
  std::size_t begin = 0;
  std::size_t end = 0;    ///< exclusive
  std::size_t index = 0;  ///< 0-based chunk position; reduce in this order
};

/// Split [begin, end) into at most `chunks` contiguous ranges of nearly
/// equal size (sizes differ by at most one, larger chunks first).  Empty
/// ranges are never emitted, so the result holds min(chunks, end - begin)
/// entries; an empty input range yields no chunks.
[[nodiscard]] std::vector<ChunkRange> static_chunks(std::size_t begin, std::size_t end,
                                                    std::size_t chunks);

/// Resolve a requested thread count: `requested` > 0 wins, otherwise the
/// HUBLAB_THREADS environment variable, otherwise 1.  The result is clamped
/// to [1, kMaxThreads].
[[nodiscard]] std::size_t resolve_threads(std::size_t requested = 0);

/// Threads the hardware supports (>= 1; hardware_concurrency with a sane
/// fallback).  Advisory only -- nothing here defaults to it, because the
/// default must stay reproducible across machines.
[[nodiscard]] std::size_t hardware_threads();

/// Upper bound on resolve_threads results; guards against absurd
/// HUBLAB_THREADS values.
inline constexpr std::size_t kMaxThreads = 256;

/// True while the current thread executes a parallel_for body; used to run
/// nested parallel loops inline.
[[nodiscard]] bool in_parallel_region();

/// Give up the calling thread's timeslice (std::this_thread::yield).  This
/// lives here because parallel.cpp is the one sanctioned owner of raw
/// threading primitives in src/; the query server's wait loops (ring full,
/// ring empty, open-loop pacing) spin through it instead of calling the
/// standard library directly.
void yield();

/// Stable executor index of the calling thread: 0 for every non-pool
/// thread (including the caller participating in a parallel loop),
/// 1..kMaxThreads-1 for pool workers, assigned once at spawn and fixed for
/// the thread's lifetime.  Observability only — Chrome-trace tids, the
/// flight recorder and per-worker utilization key on it; results must
/// never depend on which worker ran a chunk.
[[nodiscard]] std::size_t worker_index();

/// Run `body(chunk)` for every chunk of [begin, end) split `threads` ways.
/// Blocks until every chunk completed.  With threads <= 1, a single chunk,
/// or when called from inside another parallel_for body, everything runs
/// inline on the calling thread.  If bodies throw, the exception of the
/// lowest-indexed failing chunk is rethrown after all chunks finished
/// (deterministic across schedules).
void parallel_for(std::size_t begin, std::size_t end, std::size_t threads,
                  const std::function<void(const ChunkRange&)>& body);

/// As parallel_for, but over a caller-supplied chunk list (callers that
/// need to pre-size per-chunk result slots build the list via
/// static_chunks, size their slots, then hand it over).  `threads` bounds
/// the number of concurrent executors; chunk results must still be reduced
/// by `ChunkRange::index`.
void run_chunks(const std::vector<ChunkRange>& chunks, std::size_t threads,
                const std::function<void(const ChunkRange&)>& body);

}  // namespace hublab::par
