file(REMOVE_RECURSE
  "libhublab_lowerbound.a"
)
