// Golden-fixture suite for the hublab_lint multi-pass analyzer.
//
// tests/lint_fixtures/ holds three miniature repo roots (skipped by the
// analyzer's own tree walk):
//   violations/    one seeded violation file per rule; every finding is
//                  asserted here by exact (file, line, rule);
//   suppressed/    the same kinds of violations silenced by inline
//                  markers (both spellings) and the committed baseline;
//   selfcontained/ one header that fails the -fsyntax-only probe (kept
//                  separate so the other fixtures run without a compiler).
//
// The exit-code contract (0 clean / 1 findings / 2 usage) and the SARIF /
// JSON emitters are exercised through the real binary (HUBLAB_LINT_BIN).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#endif

#include "src/util/json.hpp"
#include "tools/lint/lint.hpp"

namespace {

using hublab::lint::Finding;
using hublab::lint::Options;
using hublab::lint::Report;
using hublab::lint::run_lint;

const std::string kFixtures = HUBLAB_LINT_FIXTURES;
const std::string kLintBin = HUBLAB_LINT_BIN;

Report lint_fixture(const std::string& name, bool check_headers = false,
                    bool use_baseline = true) {
  Options opt;
  opt.root = kFixtures + "/" + name;
  opt.check_headers = check_headers;
  opt.use_baseline = use_baseline;
  return run_lint(opt);
}

/// Run the real binary, returning its exit code.
int run_binary(const std::string& args) {
  const std::string cmd = kLintBin + " " + args + " > /dev/null 2>&1";
  const int rc = std::system(cmd.c_str());
#if defined(__unix__) || defined(__APPLE__)
  return WEXITSTATUS(rc);
#else
  return rc;
#endif
}

using Triple = std::tuple<std::string, std::size_t, std::string>;

std::vector<Triple> triples(const Report& report) {
  std::vector<Triple> out;
  out.reserve(report.findings.size());
  for (const Finding& f : report.findings) out.emplace_back(f.file, f.line, f.rule);
  return out;
}

TEST(LintFixtures, ViolationsReportExactFileLineRule) {
  const Report report = lint_fixture("violations", /*check_headers=*/false,
                                     /*use_baseline=*/false);
  const std::vector<Triple> expected = {
      {"bench/bench_bad.cpp", 1, "bench-harness"},
      {"docs/observability.md", 8, "metric-doc-drift"},
      {"docs/observability.md", 10, "metric-doc-drift"},
      {"docs/observability.md", 18, "span-doc-drift"},
      {"src/algo/bad_atomic.cpp", 9, "atomic-order"},
      {"src/algo/bad_atomic.cpp", 9, "atomic-order"},
      {"src/algo/bad_clock.cpp", 6, "wall-clock"},
      {"src/algo/bad_iter.cpp", 9, "unordered-iter"},
      {"src/algo/bad_metrics.cpp", 9, "metric-doc-drift"},
      {"src/algo/bad_metrics.cpp", 11, "metric-doc-drift"},
      {"src/algo/bad_metrics.cpp", 12, "metric-doc-drift"},
      {"src/algo/bad_metrics.cpp", 15, "span-doc-drift"},
      {"src/algo/bad_mutex.cpp", 11, "mutex-guard"},
      {"src/algo/bad_mutex.cpp", 13, "mutex-guard"},
      {"src/algo/bad_reduce.cpp", 7, "float-reduce"},
      {"src/algo/bad_simd.cpp", 6, "simd"},
      {"src/algo/bad_simd.cpp", 7, "simd"},
      {"src/algo/bad_volatile.cpp", 5, "volatile-sync"},
      {"src/graph/bad_layer.cpp", 3, "layer-upward"},
      {"src/graph/bad_mutator.cpp", 7, "assert-guard"},
      {"src/hub/cycle_b.hpp", 6, "layer-cycle"},
      {"src/util/bad_include.cpp", 3, "include-hygiene"},
      {"src/util/bad_include.cpp", 4, "include-hygiene"},
      {"src/util/bad_io.cpp", 5, "raw-io"},
      {"src/util/bad_rng.cpp", 6, "rng-source"},
      {"src/util/bad_stdout.cpp", 5, "stdout-in-library"},
      {"src/util/bad_thread.cpp", 5, "raw-thread"},
      {"src/util/no_filedoc.hpp", 1, "file-doc"},
      {"src/util/no_pragma.hpp", 1, "pragma-once"},
  };
  EXPECT_EQ(triples(report), expected);
  EXPECT_EQ(report.suppressed, 0U);
  EXPECT_EQ(report.baselined, 0U);
}

TEST(LintFixtures, SelfContainmentProbeFlagsBrokenHeader) {
  const Report report = lint_fixture("selfcontained", /*check_headers=*/true);
  const std::vector<Triple> expected = {
      {"src/util/bad_header.hpp", 1, "self-contained"},
  };
  EXPECT_EQ(triples(report), expected);
}

TEST(LintFixtures, EveryCatalogRuleIsProvenLive) {
  std::set<std::string> fired;
  for (const Finding& f : lint_fixture("violations", false, false).findings) {
    fired.insert(f.rule);
  }
  for (const Finding& f : lint_fixture("selfcontained", true).findings) {
    fired.insert(f.rule);
  }
  std::set<std::string> catalog;
  for (const auto& rule : hublab::lint::rule_catalog()) catalog.insert(rule.id);
  EXPECT_EQ(fired, catalog) << "every catalog rule must have a firing fixture, "
                               "and every finding must use a cataloged rule id";
}

TEST(LintFixtures, InlineMarkersAndBaselineSilenceEverything) {
  const Report report = lint_fixture("suppressed");
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(report.suppressed, 3U);  // new + legacy spellings, simd escape
  EXPECT_EQ(report.baselined, 1U);   // tools/lint_baseline.json entry
}

TEST(LintFixtures, BaselineMatchesByFileAndRuleNotLine) {
  // The baselined fixture finding is at line 6; the baseline entry has no
  // line at all, proving line churn cannot invalidate entries.
  const Report no_baseline = lint_fixture("suppressed", false, /*use_baseline=*/false);
  ASSERT_EQ(no_baseline.findings.size(), 1U);
  EXPECT_EQ(no_baseline.findings[0].file, "src/util/base_thread.cpp");
  EXPECT_EQ(no_baseline.findings[0].rule, "raw-thread");
  EXPECT_EQ(no_baseline.findings[0].line, 6U);
}

TEST(LintFixtures, MalformedBaselineThrows) {
  const std::string path = testing::TempDir() + "/hublab_bad_baseline.json";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "{\"version\": 2, \"findings\": []}\n";
  }
  EXPECT_THROW((void)hublab::lint::load_baseline(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(LintBinary, ExitCodeContract) {
  const std::string violations = kFixtures + "/violations";
  const std::string suppressed = kFixtures + "/suppressed";
  EXPECT_EQ(run_binary("--root " + violations + " --no-header-check --no-baseline"), 1);
  EXPECT_EQ(run_binary("--root " + suppressed), 0);
  EXPECT_EQ(run_binary("--bogus-flag"), 2);
  EXPECT_EQ(run_binary("--root " + kFixtures + "/does-not-exist"), 2);
  // --baseline combined with --no-baseline is contradictory.
  EXPECT_EQ(run_binary("--root " + suppressed + " --no-baseline --baseline x.json"), 2);
}

TEST(LintBinary, SarifOutputIsValidAndComplete) {
  const std::string sarif_path = testing::TempDir() + "/hublab_lint_test.sarif";
  const int rc = run_binary("--root " + kFixtures +
                            "/violations --no-header-check --no-baseline --sarif " +
                            sarif_path);
  EXPECT_EQ(rc, 1);

  std::ifstream in(sarif_path);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  const hublab::JsonValue doc = hublab::parse_json(buf.str());

  ASSERT_TRUE(doc.is_object());
  ASSERT_NE(doc.find("version"), nullptr);
  EXPECT_EQ(doc.find("version")->string_value, "2.1.0");

  const hublab::JsonValue* runs = doc.find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_TRUE(runs->is_array());
  ASSERT_EQ(runs->array_items.size(), 1U);
  const hublab::JsonValue& run = runs->array_items[0];

  // One reportingDescriptor per cataloged rule.
  const hublab::JsonValue* tool = run.find("tool");
  ASSERT_NE(tool, nullptr);
  const hublab::JsonValue* driver = tool->find("driver");
  ASSERT_NE(driver, nullptr);
  const hublab::JsonValue* rules = driver->find("rules");
  ASSERT_NE(rules, nullptr);
  ASSERT_TRUE(rules->is_array());
  std::set<std::string> rule_ids;
  for (const auto& rule : rules->array_items) {
    ASSERT_NE(rule.find("id"), nullptr);
    rule_ids.insert(rule.find("id")->string_value);
  }
  EXPECT_EQ(rule_ids.size(), hublab::lint::rule_catalog().size());

  // One result per finding, each naming a cataloged rule and a location.
  const hublab::JsonValue* results = run.find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_TRUE(results->is_array());
  EXPECT_EQ(results->array_items.size(), 29U);
  for (const auto& result : results->array_items) {
    ASSERT_NE(result.find("ruleId"), nullptr);
    EXPECT_EQ(rule_ids.count(result.find("ruleId")->string_value), 1U);
    const hublab::JsonValue* locations = result.find("locations");
    ASSERT_NE(locations, nullptr);
    ASSERT_EQ(locations->array_items.size(), 1U);
  }
  std::remove(sarif_path.c_str());
}

TEST(LintBinary, JsonOutputRoundTrips) {
  const std::string json_path = testing::TempDir() + "/hublab_lint_test.json";
  const std::string cmd = kLintBin + " --root " + kFixtures +
                          "/violations --no-header-check --no-baseline --json > " +
                          json_path + " 2>/dev/null";
  (void)std::system(cmd.c_str());

  std::ifstream in(json_path);
  ASSERT_TRUE(in.good());
  std::ostringstream buf;
  buf << in.rdbuf();
  const hublab::JsonValue doc = hublab::parse_json(buf.str());
  ASSERT_TRUE(doc.is_object());
  const hublab::JsonValue* findings = doc.find("findings");
  ASSERT_NE(findings, nullptr);
  EXPECT_EQ(findings->array_items.size(), 29U);
  std::remove(json_path.c_str());
}

TEST(LintModel, InlineSuppressionBothSpellingsAndPlacements) {
  hublab::lint::SourceFile f;
  f.rel = "src/x.cpp";
  f.raw_lines = {
      "int a;  // hublab-lint-allow(raw-io)",
      "int b;",
      "// hublab-lint: allow wall-clock",
      "int c;",
  };
  EXPECT_TRUE(hublab::lint::inline_suppressed(f, 1, "raw-io"));
  EXPECT_FALSE(hublab::lint::inline_suppressed(f, 1, "wall-clock"));
  // A marker also covers the line directly below it, wherever it sits.
  EXPECT_TRUE(hublab::lint::inline_suppressed(f, 2, "raw-io"));
  EXPECT_FALSE(hublab::lint::inline_suppressed(f, 3, "raw-io"));
  EXPECT_TRUE(hublab::lint::inline_suppressed(f, 4, "wall-clock"));  // line above
  EXPECT_FALSE(hublab::lint::inline_suppressed(f, 4, "raw-io"));
}

TEST(LintModel, LastIdentifierPeelsIndexAndCallSuffixes) {
  EXPECT_EQ(hublab::lint::last_identifier("st.groups"), "groups");
  EXPECT_EQ(hublab::lint::last_identifier("adj_[u]"), "adj_");
  EXPECT_EQ(hublab::lint::last_identifier("upward_search(v)"), "upward_search");
  EXPECT_EQ(hublab::lint::last_identifier("dist"), "dist");
  EXPECT_EQ(hublab::lint::last_identifier("42"), "42");
}

}  // namespace
