#include "util/prometheus.hpp"

#include <cctype>
#include <ostream>

namespace hublab::metrics {

namespace {

/// Empty-histogram buckets are skipped; Prometheus still needs the +Inf
/// series, so emission is unconditional there.
void write_histogram(std::ostream& out, const std::string& name, const HistogramSnapshot& snap) {
  out << "# TYPE " << name << " histogram\n";
  std::uint64_t cumulative = 0;
  for (const auto& [upper_bound, in_bucket] : snap.buckets) {
    cumulative += in_bucket;
    out << name << "_bucket{le=\"" << upper_bound << "\"} " << cumulative << "\n";
  }
  out << name << "_bucket{le=\"+Inf\"} " << snap.count << "\n";
  out << name << "_sum " << snap.sum << "\n";
  out << name << "_count " << snap.count << "\n";
}

}  // namespace

std::string prometheus_metric_name(std::string_view name) {
  std::string out = "hublab_";
  for (const char c : name) {
    const bool legal = std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' || c == ':';
    out += legal ? c : '_';
  }
  return out;
}

void write_prometheus_text(const Registry& reg, std::ostream& out) {
  for (const CounterSnapshot& c : reg.counters()) {
    const std::string name = prometheus_metric_name(c.name);
    out << "# TYPE " << name << " counter\n" << name << " " << c.value << "\n";
  }
  for (const GaugeSnapshot& g : reg.gauges()) {
    const std::string name = prometheus_metric_name(g.name);
    out << "# TYPE " << name << " gauge\n" << name << " " << g.value << "\n";
  }
  for (const HistogramSnapshot& h : reg.histograms()) {
    write_histogram(out, prometheus_metric_name(h.name), h);
  }
  for (const SketchSnapshot& s : reg.sketches()) {
    const std::string name = prometheus_metric_name(s.name);
    out << "# TYPE " << name << " summary\n";
    out << name << "{quantile=\"0.5\"} " << s.p50 << "\n";
    out << name << "{quantile=\"0.9\"} " << s.p90 << "\n";
    out << name << "{quantile=\"0.99\"} " << s.p99 << "\n";
    out << name << "{quantile=\"0.999\"} " << s.p999 << "\n";
    out << name << "_sum " << s.sum << "\n";
    out << name << "_count " << s.count << "\n";
  }
}

}  // namespace hublab::metrics
