/// \file bench_dynamic_updates.cpp
/// Ablation: incremental PLL updates vs from-scratch rebuilds.
///
/// Hub labelings are expensive to build; a deployment that sees edge
/// insertions (new roads, new links) wants the AIY-style resume instead of
/// a rebuild.  This bench measures per-insertion repair time, the label
/// growth relative to a fresh rebuild, and validates exactness after every
/// batch.

#include <cstdio>

#include "algo/shortest_paths.hpp"
#include "bench/harness.hpp"
#include "graph/generators.hpp"
#include "hub/incremental.hpp"
#include "hub/pll.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace hublab;

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "dynamic_updates",
                         "Ablation: incremental PLL vs rebuild under edge insertions");
  bool all_ok = true;

  TextTable table({"n", "m0", "inserts", "update ms/edge", "rebuild ms", "inc hubs",
                   "rebuilt hubs", "overhead", "exact"});
  const std::vector<std::size_t> full_sizes{200, 500, 1000};
  const std::vector<std::size_t> smoke_sizes{200, 500};
  for (const std::size_t n : harness.smoke() ? smoke_sizes : full_sizes) {
    auto size_span = harness.phase("inserts-n" + std::to_string(n));
    Rng rng(n);
    const Graph g = gen::connected_gnm(n, 2 * n, rng);
    harness.add_graph("connected-gnm", g.num_vertices(), g.num_edges());
    IncrementalPll inc(g);

    // Insert a 5% batch of random edges.
    const std::size_t inserts = n / 20;
    GraphBuilder rebuild_builder(n);
    for (Vertex u = 0; u < n; ++u) {
      for (const Arc& a : g.arcs(u)) {
        if (a.to > u) rebuild_builder.add_edge(u, a.to, a.weight);
      }
    }
    Rng pick(n + 7);
    Timer update_timer;
    std::size_t inserted = 0;
    while (inserted < inserts) {
      const auto u = static_cast<Vertex>(pick.next_below(n));
      const auto v = static_cast<Vertex>(pick.next_below(n));
      if (u == v) continue;
      inc.insert_edge(u, v);
      rebuild_builder.add_edge(u, v);
      ++inserted;
    }
    const double update_ms = update_timer.elapsed_ms() / static_cast<double>(inserts);

    const Graph current = rebuild_builder.build();
    Timer rebuild_timer;
    const HubLabeling rebuilt = pruned_landmark_labeling(current);
    const double rebuild_ms = rebuild_timer.elapsed_ms();

    // Spot-check exactness of the incremental labels.
    bool exact = true;
    Rng check(n + 13);
    for (int i = 0; i < 200 && exact; ++i) {
      const auto u = static_cast<Vertex>(check.next_below(n));
      const auto d = sssp_distances(current, u);
      const auto v = static_cast<Vertex>(check.next_below(n));
      exact = inc.query(u, v) == d[v];
    }
    all_ok = all_ok && exact;

    const double overhead = static_cast<double>(inc.total_hubs()) /
                            static_cast<double>(rebuilt.total_hubs());
    table.add_row({fmt_u64(n), fmt_u64(g.num_edges()), fmt_u64(inserts),
                   fmt_double(update_ms, 3), fmt_double(rebuild_ms, 1),
                   fmt_u64(inc.total_hubs()), fmt_u64(rebuilt.total_hubs()),
                   fmt_double(overhead, 3), exact ? "ok" : "FAIL"});
  }
  harness.print(table, "incremental insertions (overhead = incremental hubs / rebuilt hubs)");

  return harness.finish("dynamic updates ablation", all_ok);
}
