# Empty dependencies file for road_grid_oracle.
# This may be replaced when dependencies are built.
