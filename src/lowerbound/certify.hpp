#pragma once

#include <cstdint>
#include <optional>

#include "hub/labeling.hpp"
#include "lowerbound/gadget.hpp"
#include "matching/induced_matching.hpp"
#include "util/rng.hpp"

/// \file certify.hpp
/// Empirical certification of Lemma 2.2 and of the counting lower bound of
/// Theorem 2.1 (iii) on concrete gadget instances.
///
/// The counting argument: for every triplet (x, y, z) with y = (x+z)/2 the
/// midlevel vertex y lies on the *unique* shortest path between v_{0,x} and
/// v_{2l,z}, so for any hub labeling, y belongs to the monotone closure
/// S*_x or S*_z; distinct triplets charge distinct (vertex, hub) entries,
/// hence sum_v |S*_v| >= T where T = s^l * (s/2)^l.  Since
/// |S*_v| <= 1 + hop_diam * |S_v|, any labeling obeys
///   avg |S_v|  >=  (T/n - 1) / hop_diam.

namespace hublab::lb {

/// Outcome of checking Lemma 2.2 on an instance.
struct Lemma22Report {
  std::uint64_t sources_checked = 0;
  std::uint64_t pairs_checked = 0;
  std::uint64_t distance_mismatches = 0;   ///< dist != predicted closed form
  std::uint64_t non_unique_paths = 0;      ///< shortest path count != 1
  std::uint64_t midpoint_misses = 0;       ///< unique path avoids v_{l,(x+z)/2}

  [[nodiscard]] bool ok() const {
    return distance_mismatches == 0 && non_unique_paths == 0 && midpoint_misses == 0;
  }
};

/// Check Lemma 2.2 on H_{b,l}: for sources v_{0,x} (all of them, or
/// `max_sources` sampled with `seed`), and every z with even coordinate
/// differences: the distance matches the closed form, the shortest path is
/// unique, and it passes through the predicted midpoint.
Lemma22Report verify_lemma_2_2(const LayeredGadget& h, std::uint64_t max_sources = UINT64_MAX,
                               std::uint64_t seed = 0);

/// As above but on the degree-3 expansion G_{b,l}: checks that distances
/// between images of v_{0,x} and v_{2l,z} equal the H distances and that the
/// (unique) path passes through the image of the midpoint.  BFS-based.
Lemma22Report verify_lemma_2_2_degree3(const LayeredGadget& h, const Degree3Gadget& g,
                                       std::uint64_t max_sources = UINT64_MAX,
                                       std::uint64_t seed = 0);

/// The certified lower bound on the average hub-set size of *any* hub
/// labeling of a graph with `num_vertices` vertices and hop diameter at
/// most `hop_diameter`, charged by `num_triplets` unique-midpoint triplets:
/// (T/n - 1) / hop_diam (clamped at 0).
double certified_avg_hub_lower_bound(std::uint64_t num_triplets, std::uint64_t num_vertices,
                                     std::uint64_t hop_diameter);

/// Convenience: the certified bound for H_{b,l} using the 4*l hop bound.
double certified_bound_h(const GadgetParams& params);

/// Convenience: the certified bound for G_{b,l} given its measured vertex
/// count, using the paper's Eq. (1) diameter bound (3l+1)*s^2*4l.
double certified_bound_g(const GadgetParams& params, std::uint64_t g_num_vertices);

/// Audit a concrete labeling of H (or G) against the counting argument:
/// computes the monotone closure, verifies sum |S*_v| >= T, and returns the
/// measured sum.  Intended for small instances (runs n SSSPs).
struct ClosureAudit {
  std::uint64_t sum_labels = 0;
  std::uint64_t sum_closure = 0;
  std::uint64_t required = 0;  ///< T
  [[nodiscard]] bool ok() const { return sum_closure >= required; }
};

ClosureAudit audit_closure_bound(const Graph& g, const HubLabeling& labeling,
                                 std::uint64_t num_triplets);

/// The Section 1.2 bridge, made executable: the gadget's unique shortest
/// paths realize a Ruzsa-Szemeredi-type structure.
///
/// Fix a squared radius r and consider the bipartite graph G_r over
/// (level 0, level 2l) whose edges are the even-difference pairs (x, z) at
/// distance exactly 2*l*A + 2r (i.e. sum ((z_k-x_k)/2)^2 = r).  Classing
/// the edges by the midpoint v_{l,(x+z)/2} partitions E(G_r) into at most
/// layer_size *induced* matchings: a cross pair (x1, z2) between two
/// same-midpoint edges has, by strict convexity of the squared deltas,
/// distance strictly below 2*l*A + 2r, so it is not an edge of G_r.  This
/// is the same "matchings indexed by the hub" mechanism as Lemma 4.2, now
/// emerging from the lower-bound instance itself.
struct RadiusClassStructure {
  std::uint64_t radius = 0;             ///< r = sum of squared half-deltas
  Graph bipartite;                      ///< 2 * layer_size vertices; left x, right layer+z
  InducedMatchingPartition partition;   ///< classes keyed by midpoint index
};

/// All nonempty radius classes of the gadget, ascending in r.
std::vector<RadiusClassStructure> midpoint_matching_structure(const LayeredGadget& h);

}  // namespace hublab::lb
