/// \file bench_sumindex_protocol.cpp
/// Experiment THM1.6 (DESIGN.md): the reduction from distance labeling to
/// the Sum-Index problem.
///
/// For each gadget size, both players build the masked gadget G'_{b,l} from
/// the shared bitstring S, label it with a deterministic PLL-backed distance
/// labeling, and send one label (plus their index) to the referee, who
/// decodes S[(a+b) mod m] by comparing the decoded distance with the
/// Lemma 2.2 closed form.  We require 100% correctness over randomized
/// instances and report the message sizes next to the trivial protocol
/// (Alice ships S: m + log m bits).  The paper's theorem reads this table
/// right-to-left: any smaller distance label would beat SUMINDEX(m).

#include <cstdio>
#include <iostream>
#include <memory>

#include "hub/pll.hpp"
#include "sumindex/sumindex.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace hublab;

namespace {

HubLabeling pll_natural(const Graph& g) {
  return pruned_landmark_labeling(g, VertexOrder::kNatural);
}

}  // namespace

int main() {
  std::printf("Experiment THM1.6: Sum-Index via gadget distance labels\n");

  const auto scheme = std::make_shared<HubDistanceLabeling>(&pll_natural, "pll");

  TextTable table({"b", "l", "m", "graph", "n", "trials", "correct", "max alice bits",
                   "trivial bits", "time(s)"});
  bool all_ok = true;

  struct Case {
    std::uint32_t b;
    std::uint32_t ell;
    bool degree3;
    std::uint64_t trials;
  };
  const std::vector<Case> cases{
      {2, 1, false, 64}, {3, 1, false, 64}, {2, 2, false, 64},
      {3, 2, false, 48}, {4, 1, false, 64}, {4, 2, false, 24},
      {2, 1, true, 32},  {3, 1, true, 24},
  };

  for (const auto& c : cases) {
    const lb::GadgetParams params{c.b, c.ell};
    const si::GadgetProtocol protocol(params, scheme, c.degree3);
    const std::uint64_t m = protocol.universe_size();

    Timer timer;
    const si::ProtocolStats stats = si::evaluate_protocol(protocol, c.trials, 17, 12);
    const double elapsed = timer.elapsed_s();
    all_ok = all_ok && stats.all_correct();

    // Graph size for context (unmasked instance).
    const lb::LayeredGadget h(params);
    std::uint64_t n = h.graph().num_vertices();
    if (c.degree3) n = lb::Degree3Gadget(h).graph().num_vertices();

    table.add_row({fmt_u64(c.b), fmt_u64(c.ell), fmt_u64(m), c.degree3 ? "G'" : "H'", fmt_u64(n),
                   fmt_u64(stats.trials),
                   fmt_u64(stats.correct) + "/" + fmt_u64(stats.trials),
                   fmt_u64(stats.max_alice_bits), fmt_u64(m + ceil_log2(m)),
                   fmt_double(elapsed, 2)});
  }
  table.print(std::cout, "Theorem 1.6 protocol (every row must decode 100% correctly)");

  // Baseline sanity: the trivial protocol on the same universe sizes.
  TextTable base({"m", "trials", "correct", "alice bits"});
  for (const std::uint64_t m : {2ULL, 4ULL, 16ULL, 64ULL}) {
    const si::TrivialProtocol protocol(m);
    const si::ProtocolStats stats = si::evaluate_protocol(protocol, 64, 3);
    all_ok = all_ok && stats.all_correct();
    base.add_row({fmt_u64(m), fmt_u64(stats.trials),
                  fmt_u64(stats.correct) + "/" + fmt_u64(stats.trials),
                  fmt_u64(stats.max_alice_bits)});
  }
  base.print(std::cout, "Trivial ship-S baseline");

  std::printf("\nTHM1.6 protocol: %s\n", all_ok ? "OK" : "MISMATCH");
  return all_ok ? 0 : 1;
}
