file(REMOVE_RECURSE
  "../bench/bench_counting_lower"
  "../bench/bench_counting_lower.pdb"
  "CMakeFiles/bench_counting_lower.dir/bench_counting_lower.cpp.o"
  "CMakeFiles/bench_counting_lower.dir/bench_counting_lower.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_counting_lower.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
