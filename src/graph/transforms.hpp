#pragma once

#include <vector>

#include "graph/graph.hpp"

/// \file transforms.hpp
/// Structural graph transformations.
///
/// The key one is `reduce_degree`, the average-degree -> max-degree reduction
/// from the proof of Theorem 1.4: every vertex v of degree deg(v) is split
/// into ceil(deg(v)/ceil(m/n)) copies chained by weight-0 edges, so that the
/// result has maximum degree <= 2 + ceil(m/n) and {0,1} weights (when the
/// input is unweighted), while all pairwise distances between original
/// vertices are preserved.

namespace hublab {

/// Result of the Theorem 1.4 degree-reduction gadget.
struct DegreeReduction {
  Graph graph;                           ///< the reduced graph with {0, w} weights
  std::vector<Vertex> representative;    ///< original vertex -> chosen copy in `graph`
  std::vector<Vertex> origin;            ///< copy in `graph` -> original vertex
};

/// Split high-degree vertices into weight-0 chains so that max degree is at
/// most 2 + degree_cap.  degree_cap >= 1; for sparse graphs pass
/// ceil(m/n) as in the paper.
DegreeReduction reduce_degree(const Graph& g, std::size_t degree_cap);

/// Connected component id per vertex (0-based, BFS order).
std::vector<std::uint32_t> connected_components(const Graph& g);

/// Number of connected components.
std::size_t num_connected_components(const Graph& g);

/// Extract the largest connected component as a standalone graph.
/// `mapping_out`, if non-null, receives old-vertex -> new-vertex
/// (kInvalidVertex for vertices outside the component).
Graph largest_component(const Graph& g, std::vector<Vertex>* mapping_out = nullptr);

/// Strip weights (set all to 1).
Graph unweighted_copy(const Graph& g);

/// Permute vertex ids: new id of v is perm[v] (perm must be a bijection).
Graph relabel(const Graph& g, const std::vector<Vertex>& perm);

}  // namespace hublab
