# Empty dependencies file for hublab_oracle.
# This may be replaced when dependencies are built.
