#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "hub/pll.hpp"
#include "util/flightrec.hpp"
#include "util/metrics.hpp"
#include "util/parallel.hpp"
#include "util/perfcount.hpp"
#include "util/report.hpp"
#include "util/resource.hpp"
#include "util/table.hpp"
#include "util/trace.hpp"

/// \file harness.hpp
/// Shared runner for the bench binaries.  Every bench constructs one
/// `Harness`, wraps its work in `phase()` spans, registers the graphs it
/// ran on, prints its tables through `print()`, and returns
/// `finish(label, ok)` from main().  The harness owns the cross-cutting
/// concerns that used to be copy-pasted sixteen times:
///
///  - the banner line and the `<LABEL>: OK|MISMATCH` trailer contract that
///    tools/check.sh and the integration tests grep for;
///  - `--smoke` (cheap parameters for CI; benches query `smoke()`),
///    `--trace` (phase tree + metrics dump on stdout), `--threads N`
///    (worker count for parallel entry points; benches query `threads()`),
///    `--perf-counters` (hardware counters on phases, schema-v3 `hw`
///    objects; degrades to timer-only where `perf_event_open` fails, and
///    prints a `perf counters:` banner line saying which) and
///    `--json-out FILE` flag parsing;
///  - the crash flight recorder (util/flightrec.hpp): every bench installs
///    the handlers, so a crashing phase leaves hublab_flightrec.dump;
///  - the machine-readable result: `BENCH_<name>.json` conforming to
///    `util/bench_schema.hpp` (validated by `hublab validate-bench` in the
///    bench-smoke stage of tools/check.sh), carrying per-phase wall times
///    and counter deltas plus the final registry contents.
///
/// The registry is reset at construction so the JSON reflects this run
/// only.  Benches live outside src/, so writing to stdout here is fine.

// CMake defines HUBLAB_GIT_REV from `git rev-parse --short HEAD`; keep a
// fallback so the header also compiles in isolation (lint self-containment).
#ifndef HUBLAB_GIT_REV
#define HUBLAB_GIT_REV "unknown"
#endif

namespace hublab::bench {

class Harness {
 public:
  /// Parses flags, resets the global metrics registry and prints the
  /// banner.  `name` keys the JSON file (`BENCH_<name>.json` in the
  /// working directory unless `--json-out` overrides it).
  Harness(int argc, char** argv, std::string name, std::string_view banner)
      : name_(std::move(name)) {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg == "--smoke") {
        smoke_ = true;
      } else if (arg == "--trace") {
        trace_ = true;
      } else if (arg == "--perf-counters") {
        perf_counters_ = true;
      } else if (arg == "--json-out" && i + 1 < argc) {
        json_path_ = argv[++i];
      } else if (arg == "--threads" && i + 1 < argc) {
        threads_ = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
      } else if (arg == "--bp-roots" && i + 1 < argc) {
        bp_roots_ = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
      }
    }
    threads_ = par::resolve_threads(threads_);
    if (json_path_.empty()) json_path_ = "BENCH_" + name_ + ".json";
    start_unix_ms_ = unix_time_ms();
    fr::install_crash_handler();
    if (perf_counters_) perf::set_enabled(true);
    metrics::registry().reset();
    std::printf("%.*s%s\n", static_cast<int>(banner.size()), banner.data(),
                smoke_ ? "  [smoke]" : "");
    if (perf_counters_) {
      // check.sh greps this marker to decide whether hw blocks must appear.
      std::printf("perf counters: %s\n", perf::describe());
    }
  }

  Harness(const Harness&) = delete;
  Harness& operator=(const Harness&) = delete;

  /// True when invoked with --smoke: run the cheapest parameters that
  /// still exercise every phase.
  [[nodiscard]] bool smoke() const { return smoke_; }

  /// Resolved worker-thread count (--threads, else HUBLAB_THREADS, else 1);
  /// benches pass this to the parallel entry points they exercise.  The
  /// value is recorded in the bench JSON so baselines from different
  /// thread counts are never silently compared.
  [[nodiscard]] std::size_t threads() const { return threads_; }

  /// Bit-parallel root count for PLL constructions (--bp-roots, default
  /// kPllDefaultBpRoots).  Benches that build hub labels pass this via
  /// PllConfig; the value is recorded in the bench JSON like `threads`.
  [[nodiscard]] std::size_t bp_roots() const { return bp_roots_; }

  /// The harness's PLL construction knobs in one place.
  [[nodiscard]] PllConfig pll_config() const { return PllConfig{bp_roots_, threads_}; }

  /// True when invoked with --perf-counters (hardware counters requested;
  /// `perf::enabled()` reports whether the host actually delivers them).
  [[nodiscard]] bool perf_counters() const { return perf_counters_; }

  /// Open a named phase; keep the returned span alive for its duration.
  [[nodiscard]] Tracer::Span phase(std::string phase_name) {
    return tracer_.span(std::move(phase_name));
  }

  [[nodiscard]] Tracer& tracer() { return tracer_; }

  /// Record an input graph for the JSON `graphs` array.
  void add_graph(std::string family, std::uint64_t n, std::uint64_t m) {
    graphs_.push_back(ReportGraph{std::move(family), n, m});
  }

  /// Inner repetitions of the measured work (default 1).
  void set_repetitions(std::uint64_t reps) { repetitions_ = reps == 0 ? 1 : reps; }

  [[nodiscard]] std::ostream& out() const { return std::cout; }

  void print(const TextTable& table, const std::string& title) {
    table.print(std::cout, title);
  }

  /// Print the `<label>: OK|MISMATCH` trailer, write BENCH_<name>.json and
  /// return the process exit code.
  [[nodiscard]] int finish(const std::string& label, bool ok) {
    std::printf("\n%s: %s\n", label.c_str(), ok ? "OK" : "MISMATCH");
    if (trace_) {
      std::printf("\nphases:\n");
      tracer_.write_tree(std::cout);
      metrics::registry().dump(std::cout);
    }
    std::ofstream json(json_path_);
    write_json(json, ok);
    if (json.good()) {
      std::printf("bench JSON written to %s\n", json_path_.c_str());
    } else {
      std::printf("bench JSON: FAILED to write %s\n", json_path_.c_str());
    }
    return ok ? 0 : 1;
  }

  /// Emit the full result document through the shared report emitter
  /// (util/report.hpp), so BENCH_*.json and SERVE_*.json stay one schema
  /// (exposed for tests).
  void write_json(std::ostream& os, bool ok) {
    ReportHeader header;
    header.name = name_;
    header.git_rev = HUBLAB_GIT_REV;
    header.smoke = smoke_;
    header.ok = ok;
    header.repetitions = repetitions_;
    header.start_unix_ms = start_unix_ms_;
    header.threads = threads_;
    header.bp_roots = static_cast<std::int64_t>(bp_roots_);
    header.graphs = graphs_;
    write_run_report_json(os, header, tracer_, metrics::registry());
  }

 private:
  std::string name_;
  std::string json_path_;
  bool smoke_ = false;
  bool trace_ = false;
  bool perf_counters_ = false;
  std::size_t threads_ = 0;  ///< resolved in the constructor (>= 1 after)
  std::size_t bp_roots_ = kPllDefaultBpRoots;
  std::uint64_t repetitions_ = 1;
  std::uint64_t start_unix_ms_ = 0;
  std::vector<ReportGraph> graphs_;
  Tracer tracer_;
};

}  // namespace hublab::bench
