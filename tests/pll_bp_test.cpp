#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algo/distance_matrix.hpp"
#include "graph/generators.hpp"
#include "hub/flat_labeling.hpp"
#include "hub/labeling.hpp"
#include "hub/pll.hpp"
#include "lowerbound/gadget.hpp"
#include "rs/rs_graph.hpp"
#include "util/rng.hpp"

/// \file pll_bp_test.cpp
/// The bit-parallel construction kernel's contract: for every graph, order
/// and configuration, the labels are *byte-identical* to the scalar
/// builder's (`bp_roots = 0`), and invariant in the thread count.

namespace hublab {
namespace {

/// Exact per-entry comparison of two finalized labelings.
void expect_same_labels(const HubLabeling& a, const HubLabeling& b, const std::string& what) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices()) << what;
  for (Vertex v = 0; v < a.num_vertices(); ++v) {
    const auto la = a.label(v);
    const auto lb = b.label(v);
    ASSERT_EQ(la.size(), lb.size()) << what << ": label size differs at v=" << v;
    for (std::size_t i = 0; i < la.size(); ++i) {
      ASSERT_EQ(la[i].hub, lb[i].hub) << what << ": hub differs at v=" << v << " entry " << i;
      ASSERT_EQ(la[i].dist, lb[i].dist) << what << ": dist differs at v=" << v << " entry " << i;
    }
  }
}

/// Build with bp_roots = 0 (pure scalar) and with the given config; the
/// two labelings must match entry for entry.
void expect_bp_matches_scalar(const Graph& g, const std::vector<Vertex>& order,
                              const PllConfig& config, const std::string& what) {
  const HubLabeling scalar = pruned_landmark_labeling(g, order, PllConfig{0, 1});
  const HubLabeling bp = pruned_landmark_labeling(g, order, config);
  expect_same_labels(scalar, bp, what);
}

/// The full order x bp_roots sweep on one graph.
void sweep_graph(const Graph& g, const std::string& name) {
  for (const VertexOrder mode :
       {VertexOrder::kDegreeDescending, VertexOrder::kNatural, VertexOrder::kRandom}) {
    const std::vector<Vertex> order = make_vertex_order(g, mode, 7);
    for (const std::size_t roots : {std::size_t{1}, std::size_t{8}, std::size_t{64},
                                    g.num_vertices() + 10}) {
      expect_bp_matches_scalar(g, order, PllConfig{roots, 1},
                               name + " mode=" + std::to_string(static_cast<int>(mode)) +
                                   " bp_roots=" + std::to_string(roots));
    }
  }
}

TEST(PllBp, MatchesScalarOnStructuredFamilies) {
  sweep_graph(gen::path(40), "path40");
  sweep_graph(gen::cycle(33), "cycle33");
  sweep_graph(gen::grid(7, 9), "grid7x9");
  sweep_graph(gen::star(24), "star24");
  sweep_graph(gen::binary_tree(63), "btree63");
}

TEST(PllBp, MatchesScalarOnRandomSparse) {
  Rng rng(42);
  sweep_graph(gen::connected_gnm(160, 320, rng), "gnm160");
  sweep_graph(gen::barabasi_albert(150, 3, rng), "ba150");
  sweep_graph(gen::random_regular(120, 3, rng), "reg120");
}

TEST(PllBp, MatchesScalarOnFig1Gadgets) {
  // The unweighted degree-3 expansions G_{b,l} of the paper's Fig-1 gadget.
  // G_{2,1} (~2k vertices after path expansion) gets the full order x
  // bp_roots sweep; the larger G_{2,2} (~25k vertices) gets one
  // representative configuration to keep the test fast.
  {
    const lb::LayeredGadget h(lb::GadgetParams{2, 1});
    const lb::Degree3Gadget g(h);
    sweep_graph(g.graph(), "G_{2,1}");
  }
  {
    const lb::LayeredGadget h(lb::GadgetParams{2, 2});
    const lb::Degree3Gadget g(h);
    const std::vector<Vertex> order =
        make_vertex_order(g.graph(), VertexOrder::kDegreeDescending, 0);
    expect_bp_matches_scalar(g.graph(), order, PllConfig{64, 1}, "G_{2,2}");
  }
}

TEST(PllBp, MatchesScalarOnRsGraph) {
  const rs::RsGraph rs = rs::behrend_rs_graph(40);
  sweep_graph(rs.graph, "rs40");
}

TEST(PllBp, MatchesScalarOnDisconnectedGraph) {
  GraphBuilder b(40);
  for (Vertex v = 0; v + 1 < 20; ++v) b.add_edge(v, v + 1);
  for (Vertex v = 21; v + 1 < 40; ++v) b.add_edge(v, v + 1);
  sweep_graph(b.build(), "two-paths");
}

TEST(PllBp, WeightedGraphsDisableTablesAndStillMatch) {
  Rng rng(5);
  const Graph g = gen::road_like(8, 8, 0.15, 9, rng);
  ASSERT_TRUE(g.is_weighted());
  const std::vector<Vertex> order = make_vertex_order(g, VertexOrder::kDegreeDescending, 0);
  EXPECT_FALSE(BitParallelRoots(g, order, 64, 1).active());
  expect_bp_matches_scalar(g, order, PllConfig{64, 1}, "road-like weighted");
}

TEST(PllBp, BpBuildIsExact) {
  // Independently of scalar equality: the BP build is a correct labeling.
  Rng rng(9);
  const Graph g = gen::connected_gnm(120, 260, rng);
  const HubLabeling l = pruned_landmark_labeling(g, VertexOrder::kDegreeDescending, 0,
                                                 PllConfig{16, 1});
  const auto truth = DistanceMatrix::compute(g);
  EXPECT_FALSE(verify_labeling(g, l, truth).has_value());
}

TEST(PllBp, FlatBuildMatchesConvertedVectorBuild) {
  Rng rng(3);
  const Graph g = gen::connected_gnm(100, 220, rng);
  for (const std::size_t roots : {std::size_t{0}, std::size_t{16}, std::size_t{64}}) {
    const std::vector<Vertex> order = make_vertex_order(g, VertexOrder::kDegreeDescending, 0);
    const FlatHubLabeling direct = pruned_landmark_labeling_flat(g, order, PllConfig{roots, 1});
    const FlatHubLabeling converted(pruned_landmark_labeling(g, order, PllConfig{roots, 1}));
    ASSERT_EQ(direct.num_vertices(), converted.num_vertices());
    ASSERT_EQ(direct.total_hubs(), converted.total_hubs());
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      const auto ha = direct.hubs(v);
      const auto hb = converted.hubs(v);
      ASSERT_EQ(ha.size(), hb.size()) << "v=" << v << " bp_roots=" << roots;
      for (std::size_t i = 0; i < ha.size(); ++i) {
        ASSERT_EQ(ha[i], hb[i]) << "v=" << v << " entry " << i;
        ASSERT_EQ(direct.dists(v)[i], converted.dists(v)[i]) << "v=" << v << " entry " << i;
      }
    }
  }
}

TEST(PllBp, EstimateIsUpperBoundAndExactAtRoots) {
  Rng rng(11);
  const Graph g = gen::connected_gnm(90, 200, rng);
  const std::vector<Vertex> order = make_vertex_order(g, VertexOrder::kDegreeDescending, 0);
  const BitParallelRoots bp(g, order, 32, 1);
  ASSERT_TRUE(bp.active());
  const auto truth = DistanceMatrix::compute(g);
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      EXPECT_GE(bp.estimate(u, v), truth.at(u, v)) << "u=" << u << " v=" << v;
    }
  }
  for (std::size_t i = 0; i < bp.num_roots(); ++i) {
    const Vertex root = order[i];
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(bp.estimate(root, v, i), truth.at(root, v)) << "root=" << root;
    }
  }
}

TEST(PllBp, TableRowsMatchBfsDistances) {
  const Graph g = gen::grid(6, 7);
  const std::vector<Vertex> order = make_vertex_order(g, VertexOrder::kNatural, 0);
  const BitParallelRoots bp(g, order, 8, 1);
  ASSERT_EQ(bp.num_roots(), 8u);
  const auto truth = DistanceMatrix::compute(g);
  for (std::size_t i = 0; i < bp.num_roots(); ++i) {
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(bp.dist_row(v)[i], truth.at(order[i], v));
    }
  }
}

TEST(PllBp, ZeroRootsAndTinyGraphs) {
  EXPECT_FALSE(BitParallelRoots(gen::path(5), make_vertex_order(gen::path(5),
                                                                VertexOrder::kNatural, 0),
                                0, 1)
                   .active());
  // n = 1 and n = 2 corners through the full builder.
  for (std::size_t n : {std::size_t{1}, std::size_t{2}}) {
    const Graph g = gen::path(n);
    const std::vector<Vertex> order = make_vertex_order(g, VertexOrder::kNatural, 0);
    expect_bp_matches_scalar(g, order, PllConfig{64, 1}, "path" + std::to_string(n));
  }
}

TEST(ParallelDeterminism, PllBpThreadCountInvariant) {
  Rng rng(17);
  const Graph g = gen::connected_gnm(200, 420, rng);
  const std::vector<Vertex> order = make_vertex_order(g, VertexOrder::kDegreeDescending, 0);
  const HubLabeling one = pruned_landmark_labeling(g, order, PllConfig{32, 1});
  const HubLabeling four = pruned_landmark_labeling(g, order, PllConfig{32, 4});
  expect_same_labels(one, four, "1-vs-4 threads, bp_roots=32");
}

TEST(ParallelDeterminism, PllBpTablesThreadCountInvariant) {
  Rng rng(23);
  const Graph g = gen::barabasi_albert(180, 3, rng);
  const std::vector<Vertex> order = make_vertex_order(g, VertexOrder::kDegreeDescending, 0);
  const BitParallelRoots one(g, order, 48, 1);
  const BitParallelRoots four(g, order, 48, 4);
  ASSERT_EQ(one.num_roots(), four.num_roots());
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    for (std::size_t i = 0; i < one.num_roots(); ++i) {
      ASSERT_EQ(one.dist_row(v)[i], four.dist_row(v)[i]);
      ASSERT_EQ(one.sm1_row(v)[i], four.sm1_row(v)[i]);
      ASSERT_EQ(one.s0_row(v)[i], four.s0_row(v)[i]);
    }
  }
}

TEST(ParallelDeterminism, PllBpScalarPathThreadCountInvariant) {
  // Threads alone (no BP tables) must not perturb labels either.
  Rng rng(29);
  const Graph g = gen::connected_gnm(150, 330, rng);
  const std::vector<Vertex> order = make_vertex_order(g, VertexOrder::kRandom, 4);
  const HubLabeling one = pruned_landmark_labeling(g, order, PllConfig{0, 1});
  const HubLabeling four = pruned_landmark_labeling(g, order, PllConfig{0, 4});
  expect_same_labels(one, four, "1-vs-4 threads, scalar");
}

}  // namespace
}  // namespace hublab
