// Edge-case coverage for util/bitstream (zero-width writes, cross-word
// reads, EOF behavior) and determinism guarantees of util/rng.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <vector>

#include "util/bitstream.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace hublab {
namespace {

// ---------------------------------------------------------------------------
// BitWriter / BitReader edge cases
// ---------------------------------------------------------------------------

TEST(Bitstream, ZeroWidthWritesAddNothing) {
  BitWriter writer;
  writer.put_bits(0xFFFFFFFFFFFFFFFFULL, 0);
  EXPECT_EQ(writer.size_bits(), 0u);
  writer.put_bit(true);
  writer.put_bits(123, 0);
  EXPECT_EQ(writer.size_bits(), 1u);

  const BitString bits = writer.take();
  EXPECT_EQ(bits.size_bits(), 1u);
  BitReader reader(bits);
  EXPECT_EQ(reader.get_bits(0), 0u);  // zero-width read: no advance, value 0
  EXPECT_EQ(reader.position(), 0u);
  EXPECT_TRUE(reader.get_bit());
  EXPECT_TRUE(reader.exhausted());
}

TEST(Bitstream, TakeLeavesWriterEmpty) {
  BitWriter writer;
  writer.put_bits(0b1011, 4);
  const BitString first = writer.take();
  EXPECT_EQ(first.size_bits(), 4u);
  EXPECT_EQ(writer.size_bits(), 0u);
  writer.put_bit(true);
  const BitString second = writer.take();
  EXPECT_EQ(second.size_bits(), 1u);
}

TEST(Bitstream, FullWidth64BitValuesRoundTrip) {
  const std::uint64_t values[] = {0ULL, 1ULL, 0x8000000000000000ULL,
                                  0xFFFFFFFFFFFFFFFFULL, 0x0123456789ABCDEFULL};
  BitWriter writer;
  for (const std::uint64_t v : values) writer.put_bits(v, 64);
  const BitString bits = writer.take();
  EXPECT_EQ(bits.size_bits(), 64u * std::size(values));

  BitReader reader(bits);
  for (const std::uint64_t v : values) EXPECT_EQ(reader.get_bits(64), v);
  EXPECT_TRUE(reader.exhausted());
}

TEST(Bitstream, UnalignedCrossWordReadsRoundTrip) {
  // Offset the stream by a prime number of bits, then write values whose
  // widths force every get_bits call to straddle byte and word boundaries.
  BitWriter writer;
  writer.put_bits(0b101, 3);
  const unsigned widths[] = {7, 13, 33, 64, 1, 31, 57, 5};
  std::uint64_t expected[std::size(widths)];
  for (std::size_t i = 0; i < std::size(widths); ++i) {
    const std::uint64_t mask =
        widths[i] == 64 ? ~0ULL : ((1ULL << widths[i]) - 1);
    expected[i] = (0x9E3779B97F4A7C15ULL * (i + 1)) & mask;
    writer.put_bits(expected[i], widths[i]);
  }
  const BitString bits = writer.take();

  BitReader reader(bits);
  EXPECT_EQ(reader.get_bits(3), 0b101u);
  for (std::size_t i = 0; i < std::size(widths); ++i) {
    EXPECT_EQ(reader.get_bits(widths[i]), expected[i]) << "field " << i;
  }
  EXPECT_TRUE(reader.exhausted());
  EXPECT_EQ(reader.remaining(), 0u);
}

TEST(Bitstream, PartialTrailingByteOnlyExposesWrittenBits) {
  BitWriter writer;
  writer.put_bits(0b11111, 5);
  const BitString bits = writer.take();
  ASSERT_EQ(bits.bytes.size(), 1u);
  EXPECT_EQ(bits.size_bits(), 5u);

  BitReader reader(bits);
  EXPECT_EQ(reader.get_bits(5), 0b11111u);
  // The three padding bits of the trailing byte are beyond EOF.
  EXPECT_TRUE(reader.exhausted());
  EXPECT_THROW((void)reader.get_bit(), ParseError);
}

TEST(Bitstream, ReadPastEndThrowsParseError) {
  BitWriter writer;
  writer.put_bits(0xAB, 8);
  const BitString bits = writer.take();

  BitReader bit_reader(bits);
  (void)bit_reader.get_bits(8);
  EXPECT_THROW((void)bit_reader.get_bit(), ParseError);

  // A wide read that begins in range but overruns the end must also throw.
  BitReader wide_reader(bits);
  (void)wide_reader.get_bits(3);
  EXPECT_THROW((void)wide_reader.get_bits(6), ParseError);

  // Reading from an empty stream throws immediately.
  const BitString empty;
  BitReader empty_reader(empty);
  EXPECT_TRUE(empty_reader.exhausted());
  EXPECT_THROW((void)empty_reader.get_bit(), ParseError);
}

TEST(Bitstream, TruncatedGammaAndDeltaCodesThrow) {
  // A gamma code cut off mid-mantissa must throw, not fabricate a value.
  BitWriter writer;
  writer.put_gamma(1000);
  BitString bits = writer.take();
  ASSERT_GT(bits.bit_count, 1u);
  bits.bit_count -= 1;  // truncate the final bit
  BitReader reader(bits);
  EXPECT_THROW((void)reader.get_gamma(), ParseError);

  // All-zero stream: the unary prefix never terminates before EOF.
  BitWriter zeros;
  zeros.put_bits(0, 12);
  const BitString zero_bits = zeros.take();
  BitReader zero_reader(zero_bits);
  EXPECT_THROW((void)zero_reader.get_gamma(), ParseError);
  BitReader zero_delta_reader(zero_bits);
  EXPECT_THROW((void)zero_delta_reader.get_delta(), ParseError);
}

TEST(Bitstream, GammaDeltaRoundTripWithLengthsAcrossBoundaries) {
  const std::uint64_t values[] = {1,   2,    3,    7,      8,         255,
                                  256, 1023, 1024, 123456, 1ULL << 40};
  BitWriter writer;
  std::size_t expected_bits = 0;
  for (const std::uint64_t v : values) {
    writer.put_gamma(v);
    expected_bits += gamma_code_length(v);
    writer.put_delta(v);
    expected_bits += delta_code_length(v);
    writer.put_gamma0(v - 1);
    expected_bits += gamma_code_length(v);
  }
  const BitString bits = writer.take();
  EXPECT_EQ(bits.size_bits(), expected_bits);

  BitReader reader(bits);
  for (const std::uint64_t v : values) {
    EXPECT_EQ(reader.get_gamma(), v);
    EXPECT_EQ(reader.get_delta(), v);
    EXPECT_EQ(reader.get_gamma0(), v - 1);
  }
  EXPECT_TRUE(reader.exhausted());
}

TEST(Bitstream, PositionAndRemainingTrackReads) {
  BitWriter writer;
  writer.put_bits(0x5A5A, 16);
  const BitString bits = writer.take();
  BitReader reader(bits);
  EXPECT_EQ(reader.remaining(), 16u);
  (void)reader.get_bits(5);
  EXPECT_EQ(reader.position(), 5u);
  EXPECT_EQ(reader.remaining(), 11u);
  EXPECT_FALSE(reader.exhausted());
  (void)reader.get_bits(11);
  EXPECT_EQ(reader.remaining(), 0u);
  EXPECT_TRUE(reader.exhausted());
}

// ---------------------------------------------------------------------------
// Rng determinism
// ---------------------------------------------------------------------------

TEST(Rng, SameSeedSameStream) {
  Rng a(0xDEADBEEFULL);
  Rng b(0xDEADBEEFULL);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, KnownAnswerIsStableAcrossRuns) {
  // Pin the first outputs for the default and a fixed seed: the paper repro
  // depends on cross-platform reproducibility of every seeded experiment.
  // These constants are the xoshiro256** outputs after splitmix64 seeding;
  // if they ever change, serialized experiment seeds are silently invalidated.
  Rng defaulted;
  const std::uint64_t d0 = defaulted();
  const std::uint64_t d1 = defaulted();
  Rng again;
  EXPECT_EQ(again(), d0);
  EXPECT_EQ(again(), d1);

  Rng fixed(42);
  Rng fixed_again(42);
  std::vector<std::uint64_t> first;
  first.reserve(8);
  for (int i = 0; i < 8; ++i) first.push_back(fixed());
  for (int i = 0; i < 8; ++i) EXPECT_EQ(fixed_again(), first[i]);
  // Distinct seeds must diverge immediately (splitmix64 avalanche).
  Rng other(43);
  EXPECT_NE(other(), first[0]);
}

TEST(Rng, NextBelowStaysInRangeAndCoversSmallRanges) {
  Rng rng(7);
  bool seen[5] = {};
  for (int i = 0; i < 500; ++i) {
    const std::uint64_t r = rng.next_below(5);
    ASSERT_LT(r, 5u);
    seen[r] = true;
  }
  for (const bool s : seen) EXPECT_TRUE(s);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, NextInCoversInclusiveRangeIncludingNegatives) {
  Rng rng(11);
  bool seen[7] = {};
  for (int i = 0; i < 500; ++i) {
    const std::int64_t r = rng.next_in(-3, 3);
    ASSERT_GE(r, -3);
    ASSERT_LE(r, 3);
    seen[r + 3] = true;
  }
  for (const bool s : seen) EXPECT_TRUE(s);
  EXPECT_EQ(rng.next_in(5, 5), 5);
}

TEST(Rng, NextDoubleInHalfOpenUnitInterval) {
  Rng rng(123);
  double lo = 1.0;
  double hi = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    lo = std::min(lo, x);
    hi = std::max(hi, x);
  }
  EXPECT_LT(lo, 0.05);  // the stream actually spreads over [0, 1)
  EXPECT_GT(hi, 0.95);
}

TEST(Rng, ShuffleIsADeterministicPermutation) {
  std::vector<int> items(50);
  for (int i = 0; i < 50; ++i) items[i] = i;
  std::vector<int> copy = items;

  Rng rng(99);
  shuffle(items, rng);
  Rng rng_again(99);
  shuffle(copy, rng_again);
  EXPECT_EQ(items, copy);  // same seed, same permutation

  std::vector<int> sorted = items;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 50; ++i) EXPECT_EQ(sorted[i], i);  // still a permutation

  // Degenerate sizes must not consume randomness or crash.
  std::vector<int> empty;
  std::vector<int> single{7};
  shuffle(empty, rng);
  shuffle(single, rng);
  EXPECT_EQ(single[0], 7);
}

TEST(Rng, SplitmixSeedingDecorrelatesAdjacentSeeds) {
  // Adjacent seeds share no obvious structure: compare a few words.
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

}  // namespace
}  // namespace hublab
