# Empty compiler generated dependencies file for hublab_algo.
# This may be replaced when dependencies are built.
