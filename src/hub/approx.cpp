#include "hub/approx.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace hublab {

std::vector<Vertex> greedy_dominating_set(const Graph& g) {
  const auto n = static_cast<Vertex>(g.num_vertices());
  std::vector<bool> dominated(n, false);
  std::vector<Vertex> dominators;

  // Classic greedy: repeatedly take the vertex covering the most
  // undominated vertices (itself plus neighbors).
  std::vector<std::size_t> gain(n);
  std::size_t remaining = n;
  while (remaining > 0) {
    Vertex best = kInvalidVertex;
    std::size_t best_gain = 0;
    for (Vertex v = 0; v < n; ++v) {
      std::size_t score = dominated[v] ? 0 : 1;
      for (const Arc& a : g.arcs(v)) {
        if (!dominated[a.to]) ++score;
      }
      if (score > best_gain) {
        best_gain = score;
        best = v;
      }
    }
    HUBLAB_ASSERT(best != kInvalidVertex);
    dominators.push_back(best);
    if (!dominated[best]) {
      dominated[best] = true;
      --remaining;
    }
    for (const Arc& a : g.arcs(best)) {
      if (!dominated[a.to]) {
        dominated[a.to] = true;
        --remaining;
      }
    }
  }
  std::sort(dominators.begin(), dominators.end());
  return dominators;
}

ApproxHubLabeling approximate_labeling(const Graph& g, const HubLabeling& exact,
                                       const DistanceMatrix& truth) {
  const auto n = static_cast<Vertex>(g.num_vertices());
  HUBLAB_ASSERT(exact.num_vertices() == n && truth.num_vertices() == n);
  if (g.is_weighted()) {
    // The +2 additive guarantee counts hops to the dominator.
    throw InvalidArgument("approximate_labeling requires an unweighted graph");
  }

  const std::vector<Vertex> dominators = greedy_dominating_set(g);
  // dom(v): itself if in D, otherwise the smallest adjacent dominator.
  std::vector<Vertex> dom(n, kInvalidVertex);
  std::vector<bool> in_d(n, false);
  for (Vertex d : dominators) in_d[d] = true;
  for (Vertex v = 0; v < n; ++v) {
    if (in_d[v]) {
      dom[v] = v;
      continue;
    }
    for (const Arc& a : g.arcs(v)) {
      if (in_d[a.to]) {
        dom[v] = a.to;
        break;
      }
    }
    HUBLAB_ASSERT_MSG(dom[v] != kInvalidVertex, "dominating set property violated");
  }

  ApproxHubLabeling out;
  out.num_dominators = dominators.size();
  out.labels = HubLabeling(n);
  for (Vertex v = 0; v < n; ++v) {
    for (const HubEntry& e : exact.label(v)) {
      const Vertex d = dom[e.hub];
      const Dist dist_to_dom = truth.at(v, d);
      if (dist_to_dom != kInfDist) out.labels.add_hub(v, d, dist_to_dom);
    }
  }
  out.labels.finalize();
  return out;
}

std::size_t max_additive_error(const Graph& g, const ApproxHubLabeling& approx,
                               const DistanceMatrix& truth) {
  const auto n = static_cast<Vertex>(g.num_vertices());
  std::size_t worst = 0;
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u; v < n; ++v) {
      const Dist actual = truth.at(u, v);
      if (actual == kInfDist) continue;
      const Dist est = approx.estimate(u, v);
      if (est == kInfDist || est < actual) return 3;  // guarantee broken
      worst = std::max(worst, static_cast<std::size_t>(est - actual));
    }
  }
  return worst;
}

}  // namespace hublab
