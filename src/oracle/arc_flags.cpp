#include "oracle/arc_flags.hpp"

#include <queue>

#include "algo/shortest_paths.hpp"
#include "util/error.hpp"

namespace hublab {

ArcFlagsOracle::ArcFlagsOracle(const Graph& g, std::size_t num_regions, std::uint64_t seed)
    : g_(&g), num_regions_(num_regions) {
  const auto n = static_cast<Vertex>(g.num_vertices());
  if (num_regions_ == 0) throw InvalidArgument("arc flags need at least one region");
  num_regions_ = std::min<std::size_t>(num_regions_, std::max<std::size_t>(1, n));

  // BFS-grown partition: random seeds, multi-source BFS, each vertex joins
  // the region that reaches it first.
  region_.assign(n, std::numeric_limits<std::uint32_t>::max());
  {
    Rng rng(seed);
    std::vector<Vertex> pool(n);
    for (Vertex v = 0; v < n; ++v) pool[v] = v;
    shuffle(pool, rng);
    std::queue<Vertex> q;
    for (std::size_t r = 0; r < num_regions_; ++r) {
      region_[pool[r]] = static_cast<std::uint32_t>(r);
      q.push(pool[r]);
    }
    while (!q.empty()) {
      const Vertex u = q.front();
      q.pop();
      for (const Arc& a : g.arcs(u)) {
        if (region_[a.to] == std::numeric_limits<std::uint32_t>::max()) {
          region_[a.to] = region_[u];
          q.push(a.to);
        }
      }
    }
    // Isolated/unreached vertices become singleton members of region 0.
    for (Vertex v = 0; v < n; ++v) {
      if (region_[v] == std::numeric_limits<std::uint32_t>::max()) region_[v] = 0;
    }
  }

  // Arc indexing mirrors the CSR layout.
  arc_offset_.assign(n + 1, 0);
  for (Vertex v = 0; v < n; ++v) arc_offset_[v + 1] = arc_offset_[v] + g.degree(v);
  flags_.assign(arc_offset_[n] * num_regions_, 0);

  // Exact flags by one SSSP per target-side vertex: arc (u -> v) gets the
  // flag of region(t) iff w + dist(v, t) == dist(u, t).
  for (Vertex t = 0; t < n; ++t) {
    const auto dist = sssp_distances(g, t);
    const std::uint32_t rt = region_[t];
    for (Vertex u = 0; u < n; ++u) {
      if (dist[u] == kInfDist) continue;
      const auto arcs = g.arcs(u);
      for (std::size_t i = 0; i < arcs.size(); ++i) {
        const Vertex v = arcs[i].to;
        if (dist[v] != kInfDist && dist[v] + arcs[i].weight == dist[u]) {
          flags_[(arc_offset_[u] + i) * num_regions_ + rt] = 1;
        }
      }
    }
  }
}

Dist ArcFlagsOracle::distance(Vertex s, Vertex t) const {
  const Graph& g = *g_;
  HUBLAB_ASSERT(s < g.num_vertices() && t < g.num_vertices());
  if (s == t) return 0;
  const std::uint32_t rt = region_[t];

  std::vector<Dist> dist(g.num_vertices(), kInfDist);
  using Item = std::pair<Dist, Vertex>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[s] = 0;
  pq.emplace(0, s);
  last_settled_ = 0;
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d != dist[u]) continue;
    ++last_settled_;
    if (u == t) return d;
    const auto arcs = g.arcs(u);
    for (std::size_t i = 0; i < arcs.size(); ++i) {
      if (flags_[(arc_offset_[u] + i) * num_regions_ + rt] == 0) continue;
      const Dist nd = d + arcs[i].weight;
      if (nd < dist[arcs[i].to]) {
        dist[arcs[i].to] = nd;
        pq.emplace(nd, arcs[i].to);
      }
    }
  }
  return dist[t];
}

std::size_t ArcFlagsOracle::space_bytes() const {
  // Flags are conceptually 1 bit; count them as bits for the tradeoff
  // tables (the in-memory byte representation is an implementation detail).
  return flags_.size() / 8 + region_.size() * sizeof(std::uint32_t);
}

double ArcFlagsOracle::flag_density() const {
  if (flags_.empty()) return 0.0;
  std::size_t set = 0;
  for (const auto f : flags_) set += f;
  return static_cast<double>(set) / static_cast<double>(flags_.size());
}

}  // namespace hublab
