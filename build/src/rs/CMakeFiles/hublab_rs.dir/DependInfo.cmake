
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rs/behrend.cpp" "src/rs/CMakeFiles/hublab_rs.dir/behrend.cpp.o" "gcc" "src/rs/CMakeFiles/hublab_rs.dir/behrend.cpp.o.d"
  "/root/repo/src/rs/rs_graph.cpp" "src/rs/CMakeFiles/hublab_rs.dir/rs_graph.cpp.o" "gcc" "src/rs/CMakeFiles/hublab_rs.dir/rs_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/hublab_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/matching/CMakeFiles/hublab_matching.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hublab_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
