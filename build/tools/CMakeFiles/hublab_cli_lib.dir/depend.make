# Empty dependencies file for hublab_cli_lib.
# This may be replaced when dependencies are built.
