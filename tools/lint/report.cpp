// Report emission: human-readable text, machine-readable JSON, and SARIF
// 2.1.0 (one reportingDescriptor per rule in the catalog, one result per
// finding) for code-scanning UIs.

#include <ostream>

#include "src/util/json.hpp"
#include "tools/lint/lint.hpp"

namespace hublab::lint {

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> kRules = {
      // style pass
      {"rng-source", "randomness comes from util/rng.hpp with an explicit seed"},
      {"stdout-in-library", "src/ never writes to stdout"},
      {"raw-io", "diagnostics route through the structured logger, not fprintf/cerr"},
      {"raw-thread", "threads are spawned only by the util/parallel.cpp pool"},
      {"pragma-once", "headers start with #pragma once"},
      {"include-hygiene", "project includes resolve from src/ or the repo root, no ../"},
      {"file-doc", "src/ headers carry a /// \\file comment"},
      {"assert-guard", "public mutating APIs validate before mutating"},
      {"self-contained", "src/ headers compile on their own"},
      {"bench-harness", "bench binaries run through bench/harness.hpp"},
      // layering pass
      {"layer-upward", "no include from a lower architecture layer into a higher one"},
      {"layer-cycle", "the include graph and the middle-layer directory graph are acyclic"},
      // determinism pass
      {"unordered-iter", "no range-for over std::unordered_* containers"},
      {"wall-clock", "clocks are read only through util/timer.hpp helpers"},
      {"float-reduce", "no floating-point accumulation inside parallel bodies"},
      // concurrency pass
      {"atomic-order", "atomic operations name an explicit std::memory_order"},
      {"volatile-sync", "volatile is never used as a synchronization primitive"},
      {"mutex-guard", "mutexes are locked through RAII guards in the declaring TU"},
      // drift pass
      {"metric-doc-drift", "registry metric names match docs/observability.md"},
      {"span-doc-drift", "tracer span names match docs/observability.md"},
      // simd pass
      {"simd", "raw SIMD intrinsics are confined to the src/hub/simd_kernel* TUs"},
  };
  return kRules;
}

void write_text(std::ostream& out, const Report& report) {
  for (const Finding& f : report.findings) {
    out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
  }
  out << "hublab_lint: " << report.findings.size() << " finding(s) across "
      << report.files_scanned << " file(s)";
  if (report.suppressed != 0) out << ", " << report.suppressed << " suppressed inline";
  if (report.baselined != 0) out << ", " << report.baselined << " baselined";
  out << "\n";
}

void write_json(std::ostream& out, const Report& report) {
  JsonWriter w(out);
  w.begin_object();
  w.kv("files_scanned", static_cast<std::uint64_t>(report.files_scanned));
  w.kv("suppressed", static_cast<std::uint64_t>(report.suppressed));
  w.kv("baselined", static_cast<std::uint64_t>(report.baselined));
  w.key("findings").begin_array();
  for (const Finding& f : report.findings) {
    w.begin_object();
    w.kv("file", f.file);
    w.kv("line", static_cast<std::uint64_t>(f.line));
    w.kv("rule", f.rule);
    w.kv("message", f.message);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << "\n";
}

void write_sarif(std::ostream& out, const Report& report) {
  JsonWriter w(out);
  w.begin_object();
  w.kv("version", "2.1.0");
  w.kv("$schema",
       "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/"
       "sarif-schema-2.1.0.json");
  w.key("runs").begin_array();
  w.begin_object();

  w.key("tool").begin_object();
  w.key("driver").begin_object();
  w.kv("name", "hublab_lint");
  w.kv("informationUri", "docs/correctness.md");
  w.key("rules").begin_array();
  for (const RuleInfo& rule : rule_catalog()) {
    w.begin_object();
    w.kv("id", rule.id);
    w.key("shortDescription").begin_object();
    w.kv("text", rule.summary);
    w.end_object();
    w.end_object();
  }
  w.end_array();  // rules
  w.end_object();  // driver
  w.end_object();  // tool

  w.key("results").begin_array();
  for (const Finding& f : report.findings) {
    w.begin_object();
    w.kv("ruleId", f.rule);
    w.kv("level", "error");
    w.key("message").begin_object();
    w.kv("text", f.message);
    w.end_object();
    w.key("locations").begin_array();
    w.begin_object();
    w.key("physicalLocation").begin_object();
    w.key("artifactLocation").begin_object();
    w.kv("uri", f.file);
    w.end_object();
    w.key("region").begin_object();
    w.kv("startLine", static_cast<std::uint64_t>(f.line == 0 ? 1 : f.line));
    w.end_object();
    w.end_object();  // physicalLocation
    w.end_object();
    w.end_array();  // locations
    w.end_object();
  }
  w.end_array();  // results

  w.end_object();  // run
  w.end_array();  // runs
  w.end_object();
  out << "\n";
}

}  // namespace hublab::lint
