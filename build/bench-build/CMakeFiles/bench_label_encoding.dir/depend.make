# Empty dependencies file for bench_label_encoding.
# This may be replaced when dependencies are built.
