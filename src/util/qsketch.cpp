#include "util/qsketch.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace hublab {

QuantileSketch::QuantileSketch(std::size_t buffer_capacity)
    : capacity_(std::max<std::size_t>(8, buffer_capacity + (buffer_capacity & 1))) {}

void QuantileSketch::record(std::uint64_t value) {
  if (levels_.empty()) {
    levels_.emplace_back();
    parity_.push_back(0);
  }
  levels_[0].push_back(value);
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
  if (levels_[0].size() >= capacity_) compact_level(0);
}

void QuantileSketch::compact_level(std::size_t level) {
  for (; level < levels_.size() && levels_[level].size() >= capacity_; ++level) {
    if (level + 1 == levels_.size()) {
      levels_.emplace_back();  // may reallocate: take `buf` only afterwards
      parity_.push_back(0);
    }
    std::vector<std::uint64_t>& buf = levels_[level];
    std::sort(buf.begin(), buf.end());
    // Odd-sized buffers (possible after merge) keep their smallest element
    // behind so the compacted remainder has even length and total weight is
    // preserved exactly: 2j items of weight w become j items of weight 2w.
    const std::size_t base = buf.size() & 1;
    const std::size_t offset = base + parity_[level];
    parity_[level] ^= 1;
    for (std::size_t i = offset; i < buf.size(); i += 2) {
      levels_[level + 1].push_back(buf[i]);
    }
    // One compaction of weight-w items shifts any rank by at most w.
    compaction_error_ += 1ULL << level;
    buf.resize(base);
  }
}

void QuantileSketch::merge(const QuantileSketch& other) {
  HUBLAB_ASSERT_MSG(this != &other, "QuantileSketch::merge with itself");
  if (other.count_ == 0) return;
  if (levels_.size() < other.levels_.size()) {
    levels_.resize(other.levels_.size());
    parity_.resize(other.levels_.size(), 0);
  }
  for (std::size_t i = 0; i < other.levels_.size(); ++i) {
    levels_[i].insert(levels_[i].end(), other.levels_[i].begin(), other.levels_[i].end());
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  compaction_error_ += other.compaction_error_;
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    if (levels_[i].size() >= capacity_) compact_level(i);
  }
}

std::uint64_t QuantileSketch::quantile(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 1.0);
  // Nearest-rank target over the preserved total weight (== count_).
  const double exact = p * static_cast<double>(count_);
  auto target = static_cast<std::uint64_t>(exact);
  if (static_cast<double>(target) < exact) ++target;
  if (target == 0) target = 1;

  std::vector<std::pair<std::uint64_t, std::uint64_t>> weighted;  // (value, weight)
  weighted.reserve(stored_items());
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    for (const std::uint64_t v : levels_[i]) weighted.emplace_back(v, 1ULL << i);
  }
  std::sort(weighted.begin(), weighted.end());
  std::uint64_t cumulative = 0;
  for (const auto& [value, weight] : weighted) {
    cumulative += weight;
    if (cumulative >= target) return value;
  }
  return max_;  // numeric slack in `exact` only; weights sum to count_
}

std::uint64_t QuantileSketch::min() const noexcept {
  return count_ == 0 ? 0 : min_;
}

std::uint64_t QuantileSketch::rank_error_bound() const noexcept {
  if (levels_.size() <= 1) return 0;  // everything still at weight 1: exact
  // + one max item weight for the discretization of the cumulative scan.
  return compaction_error_ + (1ULL << (levels_.size() - 1));
}

std::size_t QuantileSketch::stored_items() const noexcept {
  std::size_t total = 0;
  for (const auto& level : levels_) total += level.size();
  return total;
}

void QuantileSketch::reset() {
  levels_.clear();
  parity_.clear();
  count_ = 0;
  sum_ = 0;
  min_ = ~0ULL;
  max_ = 0;
  compaction_error_ = 0;
}

}  // namespace hublab
