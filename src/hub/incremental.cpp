#include "hub/incremental.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "util/error.hpp"

namespace hublab {

IncrementalPll::IncrementalPll(const Graph& g, const std::vector<Vertex>& order)
    : adj_(g.num_vertices()), order_(order), rank_of_(g.num_vertices()),
      labels_(g.num_vertices()) {
  HUBLAB_ASSERT_MSG(order_.size() == g.num_vertices(), "order must be a permutation");
  for (Vertex r = 0; r < order_.size(); ++r) rank_of_[order_[r]] = r;
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    const auto arcs = g.arcs(u);
    adj_[u].assign(arcs.begin(), arcs.end());
  }
  // Initial labels: import from the static builder (same order).
  const HubLabeling initial = pruned_landmark_labeling(g, order_);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    for (const HubEntry& e : initial.label(v)) {
      labels_[v].push_back(RankEntry{rank_of_[e.hub], e.dist});
    }
    std::sort(labels_[v].begin(), labels_[v].end(),
              [](const RankEntry& a, const RankEntry& b) { return a.rank < b.rank; });
  }
}

IncrementalPll::IncrementalPll(const Graph& g)
    : IncrementalPll(g, make_vertex_order(g, VertexOrder::kDegreeDescending)) {}

Dist IncrementalPll::query_upto(Vertex u, Vertex v, Vertex rank_limit) const {
  const auto& a = labels_[u];
  const auto& b = labels_[v];
  Dist best = kInfDist;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].rank >= rank_limit || b[j].rank >= rank_limit) break;
    if (a[i].rank < b[j].rank) {
      ++i;
    } else if (a[i].rank > b[j].rank) {
      ++j;
    } else {
      best = std::min(best, a[i].dist + b[j].dist);
      ++i;
      ++j;
    }
  }
  return best;
}

Dist IncrementalPll::query(Vertex u, Vertex v) const {
  HUBLAB_ASSERT_RANGE(u, labels_.size());
  HUBLAB_ASSERT_RANGE(v, labels_.size());
  return query_upto(u, v, static_cast<Vertex>(order_.size()));
}

bool IncrementalPll::improve_entry(Vertex v, Vertex rank, Dist dist) {
  auto& label = labels_[v];
  const auto it = std::lower_bound(
      label.begin(), label.end(), rank,
      [](const RankEntry& e, Vertex r) { return e.rank < r; });
  if (it != label.end() && it->rank == rank) {
    if (it->dist <= dist) return false;
    it->dist = dist;
    return true;
  }
  label.insert(it, RankEntry{rank, dist});
  return true;
}

void IncrementalPll::resume(Vertex rank, Vertex seed, Dist seed_dist) {
  const Vertex hub_vertex = order_[rank];
  using Item = std::pair<Dist, Vertex>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.emplace(seed_dist, seed);
  // Local tentative distances for this resume wave only.
  std::unordered_map<Vertex, Dist> dist;
  dist[seed] = seed_dist;
  while (!pq.empty()) {
    const auto [d, x] = pq.top();
    pq.pop();
    const auto it = dist.find(x);
    if (it == dist.end() || it->second != d) continue;
    // Prune 1: an existing entry for this hub already at least as good.
    const auto& label = labels_[x];
    const auto eit = std::lower_bound(
        label.begin(), label.end(), rank,
        [](const RankEntry& e, Vertex r) { return e.rank < r; });
    if (eit != label.end() && eit->rank == rank && eit->dist <= d) continue;
    // Prune 2: covered by more important hubs (the static PLL rule).
    if (query_upto(hub_vertex, x, rank) <= d) continue;
    improve_entry(x, rank, d);
    for (const Arc& a : adj_[x]) {
      const Dist nd = d + a.weight;
      auto [dit, fresh] = dist.try_emplace(a.to, nd);
      if (fresh || nd < dit->second) {
        dit->second = nd;
        pq.emplace(nd, a.to);
      }
    }
  }
}

void IncrementalPll::insert_edge(Vertex a, Vertex b, Weight weight) {
  if (a >= adj_.size() || b >= adj_.size()) throw InvalidArgument("insert_edge: out of range");
  if (a == b) throw InvalidArgument("insert_edge: self-loop");
  adj_[a].push_back(Arc{b, weight});
  adj_[b].push_back(Arc{a, weight});

  // Resume for every hub of a (through the new edge into b) and of b.
  // Copy the hub lists first: resumes mutate labels_.
  const std::vector<RankEntry> hubs_a = labels_[a];
  const std::vector<RankEntry> hubs_b = labels_[b];
  for (const RankEntry& e : hubs_a) resume(e.rank, b, e.dist + weight);
  for (const RankEntry& e : hubs_b) resume(e.rank, a, e.dist + weight);
}

std::size_t IncrementalPll::total_hubs() const {
  std::size_t total = 0;
  for (const auto& label : labels_) total += label.size();
  return total;
}

HubLabeling IncrementalPll::labels() const {
  HubLabeling out(labels_.size());
  for (Vertex v = 0; v < labels_.size(); ++v) {
    for (const RankEntry& e : labels_[v]) out.add_hub(v, order_[e.rank], e.dist);
  }
  out.finalize();
  return out;
}

std::vector<Vertex> unpack_shortest_path(const Graph& g, const HubLabeling& labels, Vertex u,
                                         Vertex v) {
  HUBLAB_ASSERT_RANGE(u, g.num_vertices());
  HUBLAB_ASSERT_RANGE(v, g.num_vertices());
  Dist remaining = labels.query(u, v);
  if (remaining == kInfDist) return {};
  std::vector<Vertex> path{u};
  Vertex x = u;
  while (x != v) {
    bool stepped = false;
    for (const Arc& a : g.arcs(x)) {
      const Dist rest = labels.query(a.to, v);
      if (rest != kInfDist && a.weight + rest == remaining) {
        // Guard against weight-0 cycles: insist on progress in (dist,
        // vertex) lexicographic terms.
        if (a.weight == 0 && rest == remaining && a.to == x) continue;
        path.push_back(a.to);
        x = a.to;
        remaining = rest;
        stepped = true;
        break;
      }
    }
    HUBLAB_ASSERT_MSG(stepped, "unpack_shortest_path: labels are not exact");
    if (path.size() > g.num_vertices() * 2 + 2) {
      // Weight-0 plateaus could in principle loop; bail out defensively.
      throw Error("unpack_shortest_path: no simple progress (0-weight plateau)");
    }
  }
  return path;
}

}  // namespace hublab
