#include <gtest/gtest.h>

#include "algo/distance_matrix.hpp"
#include "algo/shortest_paths.hpp"
#include "graph/generators.hpp"
#include "hub/constructions.hpp"
#include "hub/labeling.hpp"
#include "hub/pll.hpp"
#include "util/rng.hpp"

namespace hublab {
namespace {

TEST(HubLabeling, EmptyQueryIsInfinite) {
  HubLabeling l(2);
  l.finalize();
  EXPECT_EQ(l.query(0, 1), kInfDist);
  EXPECT_EQ(l.query_with_hub(0, 1).meeting_hub, kInvalidVertex);
}

TEST(HubLabeling, HandBuiltQuery) {
  // Path 0-1-2, hub = vertex 1 for everyone.
  HubLabeling l(3);
  l.add_hub(0, 1, 1);
  l.add_hub(1, 1, 0);
  l.add_hub(2, 1, 1);
  l.finalize();
  EXPECT_EQ(l.query(0, 2), 2u);
  EXPECT_EQ(l.query(0, 1), 1u);
  EXPECT_EQ(l.query_with_hub(0, 2).meeting_hub, 1u);
}

TEST(HubLabeling, PicksMinimumOverCommonHubs) {
  HubLabeling l(2);
  l.add_hub(0, 0, 0);
  l.add_hub(0, 1, 9);
  l.add_hub(1, 0, 4);
  l.add_hub(1, 1, 0);
  l.finalize();
  EXPECT_EQ(l.query(0, 1), 4u);
  EXPECT_EQ(l.query_with_hub(0, 1).meeting_hub, 0u);
}

TEST(HubLabeling, FinalizeDedupsKeepingMin) {
  HubLabeling l(1);
  l.add_hub(0, 5, 10);
  l.add_hub(0, 5, 3);
  l.add_hub(0, 5, 7);
  l.finalize();
  ASSERT_EQ(l.label(0).size(), 1u);
  EXPECT_EQ(l.label(0)[0].dist, 3u);
}

TEST(HubLabeling, FinalizeSortsByHub) {
  HubLabeling l(1);
  l.add_hub(0, 9, 1);
  l.add_hub(0, 2, 1);
  l.add_hub(0, 5, 1);
  l.finalize();
  const auto lab = l.label(0);
  ASSERT_EQ(lab.size(), 3u);
  EXPECT_EQ(lab[0].hub, 2u);
  EXPECT_EQ(lab[2].hub, 9u);
}

TEST(HubLabeling, HasHub) {
  HubLabeling l(2);
  l.add_hub(0, 3, 1);
  l.finalize();
  EXPECT_TRUE(l.has_hub(0, 3));
  EXPECT_FALSE(l.has_hub(0, 2));
  EXPECT_FALSE(l.has_hub(1, 3));
}

TEST(HubLabeling, Statistics) {
  HubLabeling l(3);
  l.add_hub(0, 0, 0);
  l.add_hub(1, 0, 1);
  l.add_hub(1, 1, 0);
  l.finalize();
  EXPECT_EQ(l.total_hubs(), 3u);
  EXPECT_DOUBLE_EQ(l.average_label_size(), 1.0);
  EXPECT_EQ(l.max_label_size(), 2u);
  EXPECT_EQ(l.memory_bytes(), 3 * sizeof(HubEntry));
}

TEST(VerifyLabeling, AcceptsCorrectCover) {
  const Graph g = gen::grid(3, 3);
  const auto truth = DistanceMatrix::compute(g);
  const HubLabeling full = full_labeling(g, truth);
  EXPECT_FALSE(verify_labeling(g, full, truth).has_value());
}

TEST(VerifyLabeling, DetectsWrongDistance) {
  const Graph g = gen::path(3);
  const auto truth = DistanceMatrix::compute(g);
  // An undercutting wrong distance (true dist(0,2) is 2, stored 1).
  HubLabeling bad(3);
  bad.add_hub(0, 2, 1);  // true distance is 2
  bad.add_hub(2, 2, 0);
  bad.add_hub(0, 0, 0);
  bad.add_hub(1, 0, 1);
  bad.add_hub(1, 1, 0);
  bad.add_hub(2, 1, 1);
  bad.finalize();
  const auto defect = verify_labeling(g, bad, truth);
  ASSERT_TRUE(defect.has_value());
  EXPECT_EQ(defect->kind, LabelingDefect::Kind::kWrongDistance);
}

TEST(VerifyLabeling, DetectsUncoveredPair) {
  const Graph g = gen::path(3);
  const auto truth = DistanceMatrix::compute(g);
  HubLabeling l(3);
  for (Vertex v = 0; v < 3; ++v) l.add_hub(v, v, 0);  // only self-hubs
  l.finalize();
  const auto defect = verify_labeling(g, l, truth);
  ASSERT_TRUE(defect.has_value());
  EXPECT_EQ(defect->kind, LabelingDefect::Kind::kUncoveredPair);
}

TEST(VerifyLabelingSampled, AcceptsCorrectCover) {
  Rng rng(1);
  const Graph g = gen::connected_gnm(60, 120, rng);
  const HubLabeling pll = pruned_landmark_labeling(g);
  EXPECT_FALSE(verify_labeling_sampled(g, pll, 200, 7).has_value());
}

TEST(VerifyLabelingSampled, CatchesPlantedDefect) {
  const Graph g = gen::path(10);
  HubLabeling l(10);
  for (Vertex v = 0; v < 10; ++v) l.add_hub(v, v, 0);
  l.finalize();
  // With many samples the sampled verifier must find an uncovered pair.
  EXPECT_TRUE(verify_labeling_sampled(g, l, 500, 3).has_value());
}

TEST(MonotoneClosure, StillACover) {
  Rng rng(2);
  const Graph g = gen::connected_gnm(40, 80, rng);
  const auto truth = DistanceMatrix::compute(g);
  const HubLabeling pll = pruned_landmark_labeling(g);
  const HubLabeling closed = monotone_closure(g, pll);
  EXPECT_FALSE(verify_labeling(g, closed, truth).has_value());
}

TEST(MonotoneClosure, ContainsOriginalHubs) {
  Rng rng(3);
  const Graph g = gen::connected_gnm(30, 60, rng);
  const HubLabeling pll = pruned_landmark_labeling(g);
  const HubLabeling closed = monotone_closure(g, pll);
  for (Vertex v = 0; v < 30; ++v) {
    for (const HubEntry& e : pll.label(v)) {
      EXPECT_TRUE(closed.has_hub(v, e.hub));
    }
  }
  EXPECT_GE(closed.total_hubs(), pll.total_hubs());
}

TEST(MonotoneClosure, BoundedByDiameterFactor) {
  const Graph g = gen::grid(5, 5);
  const HubLabeling pll = pruned_landmark_labeling(g);
  const HubLabeling closed = monotone_closure(g, pll);
  const Dist diam = diameter_exact(g);
  EXPECT_LE(closed.total_hubs(), (diam + 1) * pll.total_hubs() + g.num_vertices());
}

TEST(MonotoneClosure, ClosedUnderTreeAncestors) {
  // On a path with natural PLL order, the closure of any label must contain
  // every vertex between v and its furthest hub.
  const Graph g = gen::path(8);
  const HubLabeling pll = pruned_landmark_labeling(g, VertexOrder::kNatural);
  const HubLabeling closed = monotone_closure(g, pll);
  for (Vertex v = 0; v < 8; ++v) {
    for (const HubEntry& e : closed.label(v)) {
      // Every vertex strictly between v and e.hub on the path is a hub too.
      const Vertex lo = std::min(v, e.hub);
      const Vertex hi = std::max(v, e.hub);
      for (Vertex x = lo; x <= hi; ++x) EXPECT_TRUE(closed.has_hub(v, x));
    }
  }
}

}  // namespace
}  // namespace hublab
