#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

/// \file exemplar.hpp
/// Deterministic exemplar capture for tail-latency attribution.
///
/// The latency sketches (util/qsketch.hpp) tell you *that* p99 is high;
/// exemplars tell you *which* queries landed there.  Two collectors:
///
///  - `ExemplarReservoir`: keeps a bounded, seeded reservoir of captured
///    queries per power-of-two latency bucket (the same bucketing as
///    metrics::Histogram), so every region of the latency distribution
///    retains concrete (s, t) witnesses.  Replacement decisions hash
///    (seed, bucket, arrival rank) through splitmix64, so a fixed seed and
///    a fixed offer order reproduce the identical reservoir — no global
///    RNG state, no wall-clock.
///  - `SlowQueryLog`: threshold-triggered capture of the slowest queries,
///    ordered worst-first and capped, for the "what blew the SLO" view.
///
/// Neither collector is internally synchronized: the serve loop keeps one
/// per chunk and merges in chunk order (the same discipline as its
/// QuantileSketch merges), and the process-global copies live behind the
/// metrics registry's locked wrappers.

namespace hublab::metrics {

/// One captured query and its attribution (see util/querystats.hpp).
struct Exemplar {
  std::uint64_t seq = 0;         ///< 0-based rank in the recorded query stream
  std::uint32_t s = 0;           ///< query source vertex
  std::uint32_t t = 0;           ///< query target vertex
  std::uint64_t latency_ns = 0;  ///< measured wall latency
  std::uint64_t scan_cost = 0;   ///< hub entries scanned by the kernel
  std::uint32_t meeting_hub = 0xFFFFFFFFU;  ///< kNoMeetingHub when unreachable
};

/// One pow2 latency bucket of a reservoir snapshot.
struct ExemplarBucket {
  std::uint64_t le = 0;     ///< inclusive upper latency bound (2^i - 1; 0 for bucket 0)
  std::uint64_t count = 0;  ///< queries offered to this bucket (not just retained)
  std::vector<Exemplar> exemplars;  ///< retained witnesses, ascending seq
};

/// Seeded per-latency-bucket reservoir sampler.  Deterministic: identical
/// (seed, offer sequence) pairs produce identical snapshots.
class ExemplarReservoir {
 public:
  static constexpr std::size_t kNumBuckets = 65;  // bit_width(latency) in [0, 64]

  explicit ExemplarReservoir(std::uint64_t seed = 1, std::size_t per_bucket = 2);

  void offer(const Exemplar& e);

  /// Fold another reservoir in: re-offers its retained exemplars in bucket
  /// then seq order and accounts its unretained offers, so counts stay
  /// exact while retention stays bounded.  Deterministic given merge order.
  void merge(const ExemplarReservoir& other);

  /// Nonempty buckets ascending by `le`; exemplars ascending by seq.
  [[nodiscard]] std::vector<ExemplarBucket> snapshot() const;

  [[nodiscard]] std::uint64_t count() const noexcept { return total_offered_; }
  [[nodiscard]] std::size_t per_bucket() const noexcept { return per_bucket_; }

  /// Drop all captures; seed and capacity persist.
  void reset();

 private:
  struct Bucket {
    std::uint64_t offered = 0;
    std::vector<Exemplar> kept;
  };

  std::uint64_t seed_;
  std::size_t per_bucket_;
  std::uint64_t total_offered_ = 0;
  std::vector<Bucket> buckets_;
};

/// Threshold-triggered capture of the slowest queries, worst-first.
class SlowQueryLog {
 public:
  explicit SlowQueryLog(std::uint64_t threshold_ns = 0, std::size_t capacity = 32);

  /// Records `e` when `threshold_ns() > 0 && e.latency_ns >= threshold_ns()`.
  void offer(const Exemplar& e);

  void merge(const SlowQueryLog& other);

  /// Retained entries, latency descending (ties: seq ascending), at most
  /// `capacity()` of them.
  [[nodiscard]] const std::vector<Exemplar>& entries() const noexcept { return entries_; }

  /// Every query past the threshold, including ones evicted by the cap.
  [[nodiscard]] std::uint64_t total_slow() const noexcept { return total_slow_; }
  [[nodiscard]] std::uint64_t threshold_ns() const noexcept { return threshold_ns_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Drop all captures; threshold and capacity persist.
  void reset();

 private:
  std::uint64_t threshold_ns_;
  std::size_t capacity_;
  std::uint64_t total_slow_ = 0;
  std::vector<Exemplar> entries_;
};

}  // namespace hublab::metrics
