#pragma once

#include <span>
#include <utility>
#include <vector>

#include "hub/labeling.hpp"
#include "hub/simd_kernel.hpp"

/// \file flat_labeling.hpp
/// Structure-of-arrays hub labeling for the query fast path.
///
/// `HubLabeling` stores labels as vector<vector<HubEntry>>: one heap
/// allocation per vertex, a pointer chase per label on every query, and
/// 12-byte entries padded to 16.  The query merge is exactly where exact
/// distance oracles win or lose (the space/time tradeoff of the source
/// paper's Section 1.1), so `FlatHubLabeling` converts a finalized
/// labeling into three flat arrays:
///
///  - `offsets_[v]` — CSR-style start of v's label in the hub/dist arrays;
///  - `hubs_`      — all hub ids, each label sorted ascending and
///                   terminated by a `kInvalidVertex` sentinel;
///  - `dists_`     — distances parallel to `hubs_` (sentinel slots hold
///                   `kInfDist`).
///
/// Splitting hubs from distances keeps the merge loop's comparisons on a
/// dense u32 stream, and the sentinel (== the maximum u32, sorting after
/// every real hub) lets the merge advance without bounds checks: the loop
/// only ever tests hub values, and terminates when both cursors reach
/// their sentinels.  Queries return bit-identical results to
/// `HubLabeling::query` on the labeling the structure was built from.
///
/// The structure is immutable; rebuild it after the source labeling
/// changes.

namespace hublab {

class FlatHubLabeling {
 public:
  FlatHubLabeling() = default;

  /// Convert a finalized labeling (sorted, deduplicated labels).
  explicit FlatHubLabeling(const HubLabeling& labels);

  /// Adopt pre-built flat arrays (the PLL builder's single-pass finalize).
  /// The arrays must already be in this class's layout: `offsets` has
  /// n + 1 entries counting sentinels, every label is sorted ascending by
  /// hub id and terminated by a kInvalidVertex/kInfDist sentinel pair.
  FlatHubLabeling(std::size_t num_vertices, std::vector<std::size_t> offsets,
                  std::vector<Vertex> hubs, std::vector<Dist> dists);

  [[nodiscard]] std::size_t num_vertices() const { return num_vertices_; }

  /// Entries of S(v), excluding the sentinel.
  [[nodiscard]] std::size_t label_size(Vertex v) const {
    HUBLAB_ASSERT_RANGE(v, num_vertices_);
    return offsets_[v + 1] - offsets_[v] - 1;
  }

  /// Hub ids of S(v) in ascending order, excluding the sentinel.
  [[nodiscard]] std::span<const Vertex> hubs(Vertex v) const {
    HUBLAB_ASSERT_RANGE(v, num_vertices_);
    return {hubs_.data() + offsets_[v], label_size(v)};
  }

  /// Distances parallel to hubs(v).
  [[nodiscard]] std::span<const Dist> dists(Vertex v) const {
    HUBLAB_ASSERT_RANGE(v, num_vertices_);
    return {dists_.data() + offsets_[v], label_size(v)};
  }

  /// Sum of label sizes over all vertices (sentinels excluded).
  [[nodiscard]] std::size_t total_hubs() const {
    return hubs_.empty() ? 0 : hubs_.size() - num_vertices_;
  }

  /// Common-hub minimum over the flat arrays; kInfDist when the labels
  /// share no hub.  Same results as HubLabeling::query on the source
  /// labeling.
  [[nodiscard]] Dist query(Vertex u, Vertex v) const { return query_with_hub(u, v).dist; }

  /// As query(), also reporting the meeting hub.
  [[nodiscard]] HubQueryResult query_with_hub(Vertex u, Vertex v) const {
    HUBLAB_ASSERT_RANGE(u, num_vertices_);
    HUBLAB_ASSERT_RANGE(v, num_vertices_);
    const Vertex* ha = hubs_.data() + offsets_[u];
    const Dist* da = dists_.data() + offsets_[u];
    const Vertex* hb = hubs_.data() + offsets_[v];
    const Dist* db = dists_.data() + offsets_[v];
    HubQueryResult best;
    for (;;) {
      const Vertex a = *ha;
      const Vertex b = *hb;
      if (a == b) {
        if (a == kInvalidVertex) break;  // both cursors hit their sentinels
        const Dist d = *da + *db;
        if (d < best.dist) {
          best.dist = d;
          best.meeting_hub = a;
        }
        ++ha, ++da;
        ++hb, ++db;
      } else if (a < b) {
        ++ha, ++da;
      } else {
        ++hb, ++db;
      }
    }
    return best;
  }

  /// Attribution variant of query_with_hub() (`hublab explain`, slow-query
  /// capture): same sentinel-terminated merge, same result, plus the probe
  /// records label sizes, cursor advances and the meeting hub.  A separate
  /// entry point so the plain fast path keeps its minimal loop.
  [[nodiscard]] HubQueryResult query_with_stats(Vertex u, Vertex v,
                                                metrics::QueryStats& stats) const {
    HUBLAB_ASSERT_RANGE(u, num_vertices_);
    HUBLAB_ASSERT_RANGE(v, num_vertices_);
    stats.labels(label_size(u), label_size(v));
    const Vertex* ha = hubs_.data() + offsets_[u];
    const Dist* da = dists_.data() + offsets_[u];
    const Vertex* hb = hubs_.data() + offsets_[v];
    const Dist* db = dists_.data() + offsets_[v];
    HubQueryResult best;
    for (;;) {
      const Vertex a = *ha;
      const Vertex b = *hb;
      if (a == b) {
        if (a == kInvalidVertex) break;
        stats.scanned();
        stats.matched();
        const Dist d = *da + *db;
        if (d < best.dist) {
          best.dist = d;
          best.meeting_hub = a;
        }
        ++ha, ++da;
        ++hb, ++db;
      } else if (a < b) {
        stats.scanned();
        ++ha, ++da;
      } else {
        stats.scanned();
        ++hb, ++db;
      }
    }
    stats.meeting(best.meeting_hub);
    return best;
  }

  /// Batched queries: answer `pairs[i]` into `out[i]` (same size spans).
  /// The block is grouped by source vertex (a deterministic stable sort of
  /// indices), so consecutive kernel calls reuse the same source label
  /// columns — the cache-blocking that makes batching pay — and the
  /// sorted-hub intersections run on the tier reported by
  /// `simd::active_tier()`.  Results are byte-identical to per-query
  /// `query_with_hub` for every tier and batch size: same distance, same
  /// meeting hub.  Registers the `query.batch.*` counters
  /// (docs/observability.md).
  void query_batch(std::span<const std::pair<Vertex, Vertex>> pairs,
                   std::span<HubQueryResult> out) const;

  /// As query_batch(), on an explicit dispatch tier (tests and the
  /// bench's tier sweep; unavailable tiers degrade to scalar).
  void query_batch_tier(std::span<const std::pair<Vertex, Vertex>> pairs,
                        std::span<HubQueryResult> out, simd::Tier tier) const;

  /// Actual heap footprint: array capacities plus the container
  /// bookkeeping, comparable with HubLabeling::memory_bytes().
  [[nodiscard]] std::size_t memory_bytes() const {
    return offsets_.capacity() * sizeof(std::size_t) + hubs_.capacity() * sizeof(Vertex) +
           dists_.capacity() * sizeof(Dist);
  }

 private:
  std::size_t num_vertices_ = 0;
  std::vector<std::size_t> offsets_;  ///< size n + 1, counting sentinels
  std::vector<Vertex> hubs_;          ///< per-label sorted, sentinel-terminated
  std::vector<Dist> dists_;           ///< parallel to hubs_
};

}  // namespace hublab
