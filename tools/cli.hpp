#pragma once

#include <iosfwd>
#include <string>
#include <vector>

/// \file cli.hpp
/// The `hublab` command-line tool, as a testable library function.
///
/// Subcommands:
///   gen <family> [options] -o FILE      generate a graph (edge list)
///   stats FILE                          print graph statistics
///   label FILE [-o LABELS] [--order X]  build a PLL labeling, print stats
///   query GRAPH LABELS U V              answer a distance query from disk
///   verify GRAPH LABELS [--samples N]   verify labels against the graph
///   certify-gadget B L                  Lemma 2.2 + counting bound
///   sumindex B L [--trials N]           run the Theorem 1.6 protocol
///
/// Returns a process exit code; all output goes to the provided streams.

namespace hublab::cli {

int run(const std::vector<std::string>& args, std::ostream& out, std::ostream& err);

}  // namespace hublab::cli
