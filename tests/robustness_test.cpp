#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "hub/pll.hpp"
#include "hub/serialize.hpp"
#include "labeling/distance_labeling.hpp"
#include "util/bitstream.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

/// Fuzz-style robustness tests: every decoder that consumes bytes from an
/// untrusted channel (bit streams, label blobs, graph files) must either
/// produce a value or throw hublab::ParseError -- never crash, hang, or
/// read out of bounds.  (Sanitizer-friendly by construction: all inputs
/// are owned buffers.)

namespace hublab {
namespace {

BitString random_bits(Rng& rng, std::size_t max_bytes) {
  BitString s;
  const std::size_t len = rng.next_below(max_bytes) + 1;
  s.bytes.resize(len);
  for (auto& b : s.bytes) b = static_cast<std::uint8_t>(rng.next_below(256));
  s.bit_count = len * 8 - rng.next_below(8);
  return s;
}

TEST(Fuzz, BitReaderNeverCrashes) {
  Rng rng(1);
  for (int trial = 0; trial < 500; ++trial) {
    const BitString s = random_bits(rng, 64);
    BitReader r(s);
    try {
      while (!r.exhausted()) {
        switch (trial % 4) {
          case 0: (void)r.get_gamma(); break;
          case 1: (void)r.get_delta(); break;
          case 2: (void)r.get_bits(static_cast<unsigned>(rng.next_below(65))); break;
          default: (void)r.get_bit(); break;
        }
      }
    } catch (const ParseError&) {
      // Expected for malformed codes.
    }
  }
}

HubLabeling pll_natural(const Graph& g) {
  return pruned_landmark_labeling(g, VertexOrder::kNatural);
}

TEST(Fuzz, HubLabelDecodeNeverCrashes) {
  const HubDistanceLabeling scheme(&pll_natural);
  Rng rng(2);
  for (int trial = 0; trial < 300; ++trial) {
    const BitString a = random_bits(rng, 48);
    const BitString b = random_bits(rng, 48);
    try {
      (void)scheme.decode(a, b);
    } catch (const ParseError&) {
    }
  }
}

TEST(Fuzz, TruncatedRealHubLabels) {
  Rng rng(3);
  const Graph g = gen::connected_gnm(30, 60, rng);
  const HubDistanceLabeling scheme(&pll_natural);
  const EncodedLabels enc = scheme.encode(g);
  for (Vertex v = 0; v < 30; v += 5) {
    BitString cut = enc.labels[v];
    for (const std::size_t keep : {std::size_t{1}, cut.bit_count / 3, cut.bit_count - 1}) {
      BitString prefix = cut;
      prefix.bit_count = keep;
      try {
        (void)scheme.decode(prefix, enc.labels[0]);
      } catch (const ParseError&) {
      }
    }
  }
}

TEST(Fuzz, FlatLabelDecodeNeverCrashes) {
  const FlatDistanceLabeling scheme;
  Rng rng(4);
  for (int trial = 0; trial < 200; ++trial) {
    const BitString a = random_bits(rng, 64);
    const BitString b = random_bits(rng, 64);
    try {
      (void)scheme.decode(a, b);
    } catch (const ParseError&) {
    }
  }
}

TEST(Fuzz, CorrectedApproxDecodeNeverCrashes) {
  const CorrectedApproxLabeling scheme(&pll_natural);
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const BitString a = random_bits(rng, 64);
    const BitString b = random_bits(rng, 64);
    try {
      (void)scheme.decode(a, b);
    } catch (const ParseError&) {
    }
  }
}

TEST(Fuzz, LabelingLoaderNeverCrashes) {
  Rng rng(6);
  for (int trial = 0; trial < 200; ++trial) {
    std::string bytes;
    // Half the trials start with the right magic to get past the header.
    if (trial % 2 == 0) bytes = "HLAB";
    const std::size_t len = rng.next_below(100) + 4;
    for (std::size_t i = 0; i < len; ++i) {
      bytes.push_back(static_cast<char>(rng.next_below(256)));
    }
    std::stringstream stream(bytes);
    try {
      (void)load_labeling(stream);
    } catch (const ParseError&) {
    }
  }
}

TEST(Fuzz, EdgeListReaderNeverCrashes) {
  Rng rng(7);
  const std::string alphabet = "0123456789 \n-#ab";
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    const std::size_t len = rng.next_below(120);
    for (std::size_t i = 0; i < len; ++i) {
      text.push_back(alphabet[rng.next_below(alphabet.size())]);
    }
    std::stringstream stream(text);
    try {
      (void)io::read_edge_list(stream);
    } catch (const Error&) {
    }
  }
}

TEST(Fuzz, DimacsReaderNeverCrashes) {
  Rng rng(8);
  const std::string alphabet = "0123456789 \npsa c";
  for (int trial = 0; trial < 200; ++trial) {
    std::string text;
    const std::size_t len = rng.next_below(120);
    for (std::size_t i = 0; i < len; ++i) {
      text.push_back(alphabet[rng.next_below(alphabet.size())]);
    }
    std::stringstream stream(text);
    try {
      (void)io::read_dimacs(stream);
    } catch (const Error&) {
    }
  }
}

TEST(Fuzz, BitFlippedLabelsStayContained) {
  // Flipping any single bit of a real label must yield ParseError or a
  // (possibly wrong) value -- never a crash.  Distance labels travel over
  // the simulated channel in the Sum-Index protocol, so this matters.
  Rng rng(9);
  const Graph g = gen::connected_gnm(20, 40, rng);
  const HubDistanceLabeling scheme(&pll_natural);
  const EncodedLabels enc = scheme.encode(g);
  const BitString& reference = enc.labels[1];
  for (std::size_t bit = 0; bit < enc.labels[0].bit_count; ++bit) {
    BitString mutated = enc.labels[0];
    mutated.bytes[bit / 8] = static_cast<std::uint8_t>(mutated.bytes[bit / 8] ^ (1u << (bit % 8)));
    try {
      (void)scheme.decode(mutated, reference);
    } catch (const ParseError&) {
    }
  }
}

}  // namespace
}  // namespace hublab
