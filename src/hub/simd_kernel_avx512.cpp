// AVX-512 tier of the batched query kernel (see simd_kernel.hpp): the
// same block-intersection walk as the AVX2 TU but over 16-hub blocks,
// with _mm512_permutexvar_epi32 rotations and compare-to-mask
// (_mm512_cmpeq_epi32_mask) replacing the movemask dance.  Answers are
// byte-identical to every other tier — lexicographic (dist, hub) minimum
// over the common hubs.
//
// This TU is compiled with -mavx512f only when the toolchain supports it
// (src/hub/CMakeLists.txt); raw intrinsics stay confined to the
// src/hub/simd_kernel* TUs (the `simd` lint pass).

#include "hub/simd_kernel.hpp"

#if defined(__AVX512F__)

#include <immintrin.h>

namespace hublab::simd::detail {

namespace {

inline void fold_match(HubQueryResult& best, Vertex hub, Dist d) {
  if (d < best.dist || (d == best.dist && hub < best.meeting_hub)) {
    best.dist = d;
    best.meeting_hub = hub;
  }
}

void merge_tail(HubQueryResult& best, const Vertex* hubs_a, const Dist* dists_a,
                const Vertex* hubs_b, const Dist* dists_b) {
  for (;;) {
    const Vertex a = *hubs_a;
    const Vertex b = *hubs_b;
    if (a == b) {
      if (a == kInvalidVertex) break;
      fold_match(best, a, *dists_a + *dists_b);
      ++hubs_a, ++dists_a;
      ++hubs_b, ++dists_b;
    } else if (a < b) {
      ++hubs_a, ++dists_a;
    } else {
      ++hubs_b, ++dists_b;
    }
  }
}

}  // namespace

// GCC's _mm512_permutexvar_epi32 routes a self-initialized
// _mm512_undefined_epi32() don't-care merge source through the builtin;
// -Wmaybe-uninitialized (GCC 12) flags it through the inline even though
// the all-ones implicit mask makes the value irrelevant.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

HubQueryResult intersect_avx512(const Vertex* hubs_a, const Dist* dists_a, std::size_t size_a,
                                const Vertex* hubs_b, const Dist* dists_b, std::size_t size_b) {
  HubQueryResult best;
  std::size_t ia = 0;
  std::size_t ib = 0;
  // Rotation index vectors for the 16x16 all-pairs compare, all applied to
  // the *original* B block so the fifteen permutes are independent; the
  // compares are hand-unrolled and the masks OR-reduced as a balanced
  // tree.  (GCC at -O2 compiles the obvious rotate-accumulate loop into a
  // 15-trip loop with a loop-carried OR — ~4x the per-block cost.)
  const __m512i r1 = _mm512_setr_epi32(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 0);
  const __m512i r2 = _mm512_setr_epi32(2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 0, 1);
  const __m512i r3 = _mm512_setr_epi32(3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 0, 1, 2);
  const __m512i r4 = _mm512_setr_epi32(4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 0, 1, 2, 3);
  const __m512i r5 = _mm512_setr_epi32(5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 0, 1, 2, 3, 4);
  const __m512i r6 = _mm512_setr_epi32(6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 0, 1, 2, 3, 4, 5);
  const __m512i r7 = _mm512_setr_epi32(7, 8, 9, 10, 11, 12, 13, 14, 15, 0, 1, 2, 3, 4, 5, 6);
  const __m512i r8 = _mm512_setr_epi32(8, 9, 10, 11, 12, 13, 14, 15, 0, 1, 2, 3, 4, 5, 6, 7);
  const __m512i r9 = _mm512_setr_epi32(9, 10, 11, 12, 13, 14, 15, 0, 1, 2, 3, 4, 5, 6, 7, 8);
  const __m512i r10 = _mm512_setr_epi32(10, 11, 12, 13, 14, 15, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9);
  const __m512i r11 = _mm512_setr_epi32(11, 12, 13, 14, 15, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10);
  const __m512i r12 = _mm512_setr_epi32(12, 13, 14, 15, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11);
  const __m512i r13 = _mm512_setr_epi32(13, 14, 15, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12);
  const __m512i r14 = _mm512_setr_epi32(14, 15, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13);
  const __m512i r15 = _mm512_setr_epi32(15, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14);
  while (ia + 16 <= size_a && ib + 16 <= size_b) {
    const __m512i va = _mm512_loadu_si512(hubs_a + ia);
    const __m512i vb = _mm512_loadu_si512(hubs_b + ib);
    const unsigned e0 = _mm512_cmpeq_epi32_mask(va, vb);
    const unsigned e1 = _mm512_cmpeq_epi32_mask(va, _mm512_permutexvar_epi32(r1, vb));
    const unsigned e2 = _mm512_cmpeq_epi32_mask(va, _mm512_permutexvar_epi32(r2, vb));
    const unsigned e3 = _mm512_cmpeq_epi32_mask(va, _mm512_permutexvar_epi32(r3, vb));
    const unsigned e4 = _mm512_cmpeq_epi32_mask(va, _mm512_permutexvar_epi32(r4, vb));
    const unsigned e5 = _mm512_cmpeq_epi32_mask(va, _mm512_permutexvar_epi32(r5, vb));
    const unsigned e6 = _mm512_cmpeq_epi32_mask(va, _mm512_permutexvar_epi32(r6, vb));
    const unsigned e7 = _mm512_cmpeq_epi32_mask(va, _mm512_permutexvar_epi32(r7, vb));
    const unsigned e8 = _mm512_cmpeq_epi32_mask(va, _mm512_permutexvar_epi32(r8, vb));
    const unsigned e9 = _mm512_cmpeq_epi32_mask(va, _mm512_permutexvar_epi32(r9, vb));
    const unsigned e10 = _mm512_cmpeq_epi32_mask(va, _mm512_permutexvar_epi32(r10, vb));
    const unsigned e11 = _mm512_cmpeq_epi32_mask(va, _mm512_permutexvar_epi32(r11, vb));
    const unsigned e12 = _mm512_cmpeq_epi32_mask(va, _mm512_permutexvar_epi32(r12, vb));
    const unsigned e13 = _mm512_cmpeq_epi32_mask(va, _mm512_permutexvar_epi32(r13, vb));
    const unsigned e14 = _mm512_cmpeq_epi32_mask(va, _mm512_permutexvar_epi32(r14, vb));
    const unsigned e15 = _mm512_cmpeq_epi32_mask(va, _mm512_permutexvar_epi32(r15, vb));
    unsigned mask = (((e0 | e1) | (e2 | e3)) | ((e4 | e5) | (e6 | e7))) |
                    (((e8 | e9) | (e10 | e11)) | ((e12 | e13) | (e14 | e15)));
    // Matches are rare (a handful per query), so this branch is a
    // predictable not-taken; everything else in the loop body is
    // branch-free.
    while (mask != 0) {
      const int lane = __builtin_ctz(mask);
      mask &= mask - 1;
      const Vertex hub = hubs_a[ia + static_cast<std::size_t>(lane)];
      for (std::size_t j = 0; j < 16; ++j) {  // hubs are unique: first hit wins
        if (hubs_b[ib + j] == hub) {
          fold_match(best, hub, dists_a[ia + static_cast<std::size_t>(lane)] + dists_b[ib + j]);
          break;
        }
      }
    }
    // Branchless block advance: whichever side's maximum is not larger
    // steps (both on a tie).  A conditional branch here is data-dependent
    // and ~50/50, so mispredicts would dominate the whole kernel.
    const Vertex amax = hubs_a[ia + 15];
    const Vertex bmax = hubs_b[ib + 15];
    ia += static_cast<std::size_t>(amax <= bmax) * 16;
    ib += static_cast<std::size_t>(bmax <= amax) * 16;
  }
  merge_tail(best, hubs_a + ia, dists_a + ia, hubs_b + ib, dists_b + ib);
  return best;
}

HubQueryResult probe_avx512(const Vertex* hubs_t, const Dist* dists_t, std::size_t size_t_,
                            const std::uint32_t* stamp, const Dist* sdist,
                            std::uint32_t current) {
  HubQueryResult best;
  const __m512i vcur = _mm512_set1_epi32(static_cast<int>(current));
  std::size_t i = 0;
  // 16 target hubs per step: gather their stamps (the table is L1/L2
  // resident — the gather hits cache), compare against the group stamp,
  // resolve the rare hits scalarly.  No data-dependent advance: the scan
  // is a straight line over the target label.
  for (; i + 16 <= size_t_; i += 16) {
    const __m512i vh = _mm512_loadu_si512(hubs_t + i);
    const __m512i vs = _mm512_i32gather_epi32(vh, stamp, sizeof(std::uint32_t));
    auto mask = static_cast<unsigned>(_mm512_cmpeq_epi32_mask(vs, vcur));
    while (mask != 0) {
      const auto lane = static_cast<std::size_t>(__builtin_ctz(mask));
      mask &= mask - 1;
      const Vertex h = hubs_t[i + lane];
      fold_match(best, h, sdist[h] + dists_t[i + lane]);
    }
  }
  for (; i < size_t_; ++i) {
    const Vertex h = hubs_t[i];
    if (stamp[h] == current) fold_match(best, h, sdist[h] + dists_t[i]);
  }
  return best;
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace hublab::simd::detail

#endif  // defined(__AVX512F__)
