// run_lint: load the tree, run the six passes over the shared model,
// apply the baseline, and return the surviving findings sorted by
// (file, line, rule).

#include <algorithm>
#include <set>
#include <stdexcept>
#include <tuple>

#include "tools/lint/lint.hpp"

namespace hublab::lint {

Report run_lint(const Options& opt) {
  if (!fs::exists(opt.root / "src")) {
    throw std::runtime_error("no src/ under root " + opt.root.string() +
                             " (pass --root REPO_ROOT)");
  }

  const std::vector<SourceFile> files = load_tree(opt.root);

  Sink sink;
  pass_style(files, opt, sink);
  pass_layering(files, opt, sink);
  pass_determinism(files, opt, sink);
  pass_concurrency(files, opt, sink);
  pass_drift(files, opt, sink);
  pass_simd(files, opt, sink);

  Report report;
  report.files_scanned = files.size();
  report.suppressed = sink.suppressed;

  std::set<std::pair<std::string, std::string>> grandfathered;
  if (opt.use_baseline) {
    fs::path baseline = opt.baseline_path;
    if (baseline.empty()) baseline = opt.root / "tools" / "lint_baseline.json";
    // The default baseline is optional; an explicitly requested one is not.
    if (!opt.baseline_path.empty() || fs::exists(baseline)) {
      for (const BaselineEntry& entry : load_baseline(baseline)) {
        grandfathered.emplace(entry.file, entry.rule);
      }
    }
  }

  for (Finding& f : sink.findings) {
    if (grandfathered.count({f.file, f.rule}) != 0) {
      ++report.baselined;
      continue;
    }
    report.findings.push_back(std::move(f));
  }
  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return report;
}

}  // namespace hublab::lint
