#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "matching/induced_matching.hpp"

/// \file rs_graph.hpp
/// Ruzsa-Szemeredi graphs: dense graphs whose edges partition into at most
/// n induced matchings (Definition 1.3 of the paper).
///
/// Construction (classical, from a 3-AP-free set A of [0, M)):
///   vertices  X = [0, M)  and  Y = [M, 3M)   (n = 3M total),
///   edges     {x, M + x + a}  for x in [0, M), a in A,
///   classes   indexed by the "apex" h = x + 2a in [0, 3M):
///             M_h = { (h - 2a, M + h - a) : a in A, 0 <= h - 2a < M }.
///
/// Each class is an induced matching: a cross edge between h-2a and
/// M + h - a' has difference 2a - a', and 2a - a' in A together with
/// a' in A forms the 3-AP (a', a, 2a - a') -- impossible unless a' == a.
/// This "matchings indexed by the apex" structure is exactly how Lemma 4.2
/// of the paper indexes matchings by the hub h.

namespace hublab::rs {

/// An RS graph together with its certified partition into induced matchings.
struct RsGraph {
  Graph graph;                          ///< 3M vertices
  InducedMatchingPartition partition;   ///< at most 3M classes
  std::uint64_t M = 0;                  ///< side parameter
  std::uint64_t set_size = 0;           ///< |A|
};

/// Build the RS graph from a 3-AP-free set A subset of [0, M).
/// Throws InvalidArgument if A is not 3-AP-free or has elements >= M.
RsGraph build_rs_graph(std::uint64_t M, const std::vector<std::uint64_t>& progression_free_set);

/// Convenience: Behrend set + RS graph for a target vertex count n ~ 3M.
RsGraph behrend_rs_graph(std::uint64_t M);

/// Empirical RS-style statistic for an arbitrary graph: partition the edges
/// greedily into induced matchings and report n^2 / |E| alongside the number
/// of classes used.  (RS(n) itself is defined via a max over all graphs and
/// is not computable; this reports the witness quantities.)
struct RsWitness {
  std::size_t num_vertices = 0;
  std::size_t num_edges = 0;
  std::size_t num_matchings = 0;
  double density_ratio = 0.0;  ///< n^2 / edges
};

RsWitness measure_rs_witness(const Graph& g);

/// Deep invariant audit (see util/audit.hpp): the graph has 3M vertices and
/// M * |A| edges, every edge crosses from X = [0, M) to Y = [M, 3M), the
/// partition is a valid edge partition into induced matchings (re-verified
/// from scratch), and it uses at most n = 3M classes as Definition 1.3
/// requires.
[[nodiscard]] AuditReport audit_rs_graph(const RsGraph& rs);

}  // namespace hublab::rs
