#pragma once

#include <chrono>
#include <cstdint>

/// \file timer.hpp
/// Wall-clock stopwatch used by the benchmark harness and the tracing layer
/// for coarse phase timings (google-benchmark handles the micro-level
/// measurements).
///
/// The timer starts running on construction.  `pause()` / `resume()` let a
/// span exclude work it does not want to attribute to itself (e.g. a bench
/// that interleaves timed queries with untimed verification); `elapsed_s()`
/// always reports the accumulated running time only.
///
/// This header is the only sanctioned clock source in src/ (the
/// `wall-clock` lint rule): raw timestamps come from `monotonic_ns()`
/// (latency measurement, log timestamps) or `wall_unix_ms()` (run
/// metadata such as the bench JSON `start_unix_ms`), never from
/// `std::chrono::*_clock` directly.

namespace hublab {

/// Nanoseconds on the monotonic clock, for durations and latencies.  The
/// epoch is unspecified; only differences are meaningful.
[[nodiscard]] inline std::uint64_t monotonic_ns() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now).count());
}

/// Milliseconds since the Unix epoch on the wall clock, for run metadata
/// only — wall time is not monotone, so never difference two reads.
[[nodiscard]] inline std::uint64_t wall_unix_ms() {
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(now).count());
}

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Zero the accumulated time and restart (running).
  void reset() {
    accumulated_ = Duration::zero();
    running_ = true;
    start_ = Clock::now();
  }

  /// Stop accumulating.  No-op when already paused.
  void pause() {
    if (!running_) return;
    accumulated_ += Clock::now() - start_;
    running_ = false;
  }

  /// Start accumulating again.  No-op when already running.
  void resume() {
    if (running_) return;
    running_ = true;
    start_ = Clock::now();
  }

  [[nodiscard]] bool running() const { return running_; }

  /// Seconds accumulated while running since construction or the last
  /// reset(); time spent paused is excluded.
  [[nodiscard]] double elapsed_s() const {
    Duration total = accumulated_;
    if (running_) total += Clock::now() - start_;
    return std::chrono::duration<double>(total).count();
  }

  [[nodiscard]] double elapsed_ms() const { return elapsed_s() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  using Duration = Clock::duration;
  Clock::time_point start_;
  Duration accumulated_ = Duration::zero();
  bool running_ = true;
};

}  // namespace hublab
