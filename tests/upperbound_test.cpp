#include <gtest/gtest.h>

#include "algo/distance_matrix.hpp"
#include "graph/generators.hpp"
#include "graph/transforms.hpp"
#include "hub/pll.hpp"
#include "hub/upperbound.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace hublab {
namespace {

TEST(UpperBound, RejectsBadParameters) {
  Rng rng(1);
  const Graph g = gen::cycle(10);
  const auto truth = DistanceMatrix::compute(g);
  EXPECT_THROW(upper_bound_labeling(g, truth, 1, rng), InvalidArgument);
  const Graph weighted = gen::randomize_weights(g, 5, rng);
  const auto wtruth = DistanceMatrix::compute(weighted);
  EXPECT_THROW(upper_bound_labeling(weighted, wtruth, 3, rng), InvalidArgument);
}

TEST(UpperBound, ExactOnCycle) {
  Rng rng(2);
  const Graph g = gen::cycle(24);
  const auto truth = DistanceMatrix::compute(g);
  UpperBoundStats stats;
  const HubLabeling l = upper_bound_labeling(g, truth, 3, rng, &stats);
  EXPECT_FALSE(verify_labeling(g, l, truth).has_value());
  EXPECT_EQ(stats.n, 24u);
  EXPECT_EQ(stats.total_hubs, l.total_hubs());
}

TEST(UpperBound, ExactOnGrid) {
  Rng rng(3);
  const Graph g = gen::grid(6, 6);
  const auto truth = DistanceMatrix::compute(g);
  const HubLabeling l = upper_bound_labeling(g, truth, 4, rng);
  EXPECT_FALSE(verify_labeling(g, l, truth).has_value());
}

TEST(UpperBound, ExactOnTree) {
  Rng rng(4);
  const Graph g = gen::binary_tree(63);
  const auto truth = DistanceMatrix::compute(g);
  const HubLabeling l = upper_bound_labeling(g, truth, 3, rng);
  EXPECT_FALSE(verify_labeling(g, l, truth).has_value());
}

TEST(UpperBound, ExactOnDisconnected) {
  Rng rng(5);
  GraphBuilder b(20);
  for (Vertex v = 0; v + 1 < 10; ++v) b.add_edge(v, v + 1);
  for (Vertex v = 10; v + 1 < 20; ++v) b.add_edge(v, v + 1);
  const Graph g = b.build();
  const auto truth = DistanceMatrix::compute(g);
  const HubLabeling l = upper_bound_labeling(g, truth, 3, rng);
  EXPECT_FALSE(verify_labeling(g, l, truth).has_value());
}

class UpperBoundSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t, std::size_t>> {};

TEST_P(UpperBoundSweep, ExactOnRandomRegular) {
  const auto [seed, n, D] = GetParam();
  Rng rng(seed);
  const Graph g = gen::random_regular(n, 3, rng);
  const auto truth = DistanceMatrix::compute(g);
  UpperBoundStats stats;
  const HubLabeling l = upper_bound_labeling(g, truth, D, rng, &stats);
  EXPECT_FALSE(verify_labeling(g, l, truth).has_value());
  EXPECT_GE(stats.sample_size, 1u);
}

INSTANTIATE_TEST_SUITE_P(Sweep, UpperBoundSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(40, 80),
                                            ::testing::Values(2, 3, 5)));

TEST(UpperBound, WorksOnZeroOneWeights) {
  Rng rng(6);
  const Graph base = gen::connected_gnm(40, 100, rng);
  const DegreeReduction red = reduce_degree(base, 2);
  const auto truth = DistanceMatrix::compute(red.graph);
  const HubLabeling l = upper_bound_labeling(red.graph, truth, 3, rng);
  EXPECT_FALSE(verify_labeling(red.graph, l, truth).has_value());
}

TEST(UpperBoundSparse, ExactAfterProjection) {
  Rng rng(7);
  const Graph g = gen::connected_gnm(50, 150, rng);
  const auto truth = DistanceMatrix::compute(g);
  const HubLabeling l = upper_bound_labeling_sparse(g, 3, rng);
  EXPECT_FALSE(verify_labeling(g, l, truth).has_value());
}

TEST(UpperBoundSparse, HeavyTailInput) {
  Rng rng(8);
  const Graph g = gen::barabasi_albert(60, 3, rng);
  const auto truth = DistanceMatrix::compute(g);
  const HubLabeling l = upper_bound_labeling_sparse(g, 3, rng);
  EXPECT_FALSE(verify_labeling(g, l, truth).has_value());
}

TEST(UpperBoundSparse, RejectsWeightedInput) {
  Rng rng(9);
  const Graph g = gen::randomize_weights(gen::cycle(10), 5, rng);
  EXPECT_THROW(upper_bound_labeling_sparse(g, 3, rng), InvalidArgument);
}

TEST(UpperBound, StatsAccounting) {
  Rng rng(10);
  const Graph g = gen::random_regular(60, 3, rng);
  const auto truth = DistanceMatrix::compute(g);
  UpperBoundStats stats;
  const HubLabeling l = upper_bound_labeling(g, truth, 3, rng, &stats);
  EXPECT_EQ(stats.D, 3u);
  EXPECT_GT(stats.total_hubs, 0u);
  EXPECT_DOUBLE_EQ(stats.average_label_size, l.average_label_size());
  // Every vertex keeps itself in F_v, so N(F_v) alone gives >= n hubs...
  EXPECT_GE(stats.sum_nf, g.num_vertices());
}

class Lemma42Sweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Lemma42Sweep, MatchingsAreInducedPerColorClass) {
  Rng rng(GetParam());
  const Graph g = gen::random_regular(50, 3, rng);
  const auto truth = DistanceMatrix::compute(g);
  Rng pipeline_rng(GetParam() * 31 + 7);
  EXPECT_TRUE(verify_lemma_4_2(g, truth, 3, pipeline_rng));
}

INSTANTIATE_TEST_SUITE_P(Seeds, Lemma42Sweep, ::testing::Values(1, 2, 3, 4, 5));

TEST(Lemma42, HoldsOnGridAndCycle) {
  Rng rng(11);
  {
    const Graph g = gen::grid(5, 5);
    const auto truth = DistanceMatrix::compute(g);
    EXPECT_TRUE(verify_lemma_4_2(g, truth, 4, rng));
  }
  {
    const Graph g = gen::cycle(30);
    const auto truth = DistanceMatrix::compute(g);
    EXPECT_TRUE(verify_lemma_4_2(g, truth, 3, rng));
  }
}

TEST(UpperBound, LabelSizeScalesReasonably) {
  // Not a theorem check (n too small for asymptotics), but the construction
  // should stay within a moderate factor of n per label on bounded-degree
  // graphs -- catches accidental quadratic blowups.
  Rng rng(12);
  const Graph g = gen::random_regular(100, 3, rng);
  const auto truth = DistanceMatrix::compute(g);
  const HubLabeling l = upper_bound_labeling(g, truth, 3, rng);
  EXPECT_LT(l.average_label_size(), 100.0);
}

}  // namespace
}  // namespace hublab
