/// \file bench_upperbound_sparse.cpp
/// Experiment THM1.4 (DESIGN.md): hub labelings of sparse graphs
/// (m = O(n)) via the degree-reduction gadget plus the Theorem 4.1
/// pipeline, compared against PLL and the random distant-pair scheme
/// (the [ADKP16]-style construction the paper builds on).

#include <cstdio>

#include "algo/distance_matrix.hpp"
#include "bench/harness.hpp"
#include "graph/generators.hpp"
#include "graph/transforms.hpp"
#include "hub/constructions.hpp"
#include "hub/pll.hpp"
#include "hub/upperbound.hpp"
#include "util/table.hpp"

using namespace hublab;

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "upperbound_sparse",
                         "Experiment THM1.4: sparse graphs m = c*n, all constructions exact");

  TextTable table({"n", "m", "family", "thm1.4 avg", "PLL avg", "distant-D4 avg",
                   "greedy avg", "all exact"});
  bool all_ok = true;

  struct Case {
    std::size_t n;
    std::size_t m;
    const char* family;
  };
  const std::vector<Case> full_cases{
      {200, 400, "gnm"}, {200, 600, "gnm"}, {400, 800, "gnm"},
      {400, 1200, "gnm"}, {300, 600, "ba"},
  };
  const std::vector<Case> smoke_cases{{200, 400, "gnm"}, {300, 600, "ba"}};

  auto sweep_span = harness.phase("constructions-sweep");
  for (const auto& c : harness.smoke() ? smoke_cases : full_cases) {
    Rng rng(c.n + c.m);
    const Graph g = std::string(c.family) == "ba"
                        ? gen::barabasi_albert(c.n, c.m / c.n, rng)
                        : gen::connected_gnm(c.n, c.m, rng);
    harness.add_graph(c.family, g.num_vertices(), g.num_edges());
    const DistanceMatrix truth = DistanceMatrix::compute(g);

    Rng ub_rng(1);
    const HubLabeling thm14 = upper_bound_labeling_sparse(g, 3, ub_rng);
    const HubLabeling pll = pruned_landmark_labeling(g);
    Rng dc_rng(2);
    const HubLabeling distant = random_distant_cover(g, truth, 4, dc_rng);
    std::string greedy_avg = "-";
    if (g.num_vertices() <= 400) {
      const HubLabeling greedy = greedy_cover(g, truth);
      greedy_avg = fmt_double(greedy.average_label_size(), 2);
      all_ok = all_ok && !verify_labeling(g, greedy, truth).has_value();
    }

    const bool exact = !verify_labeling(g, thm14, truth).has_value() &&
                       !verify_labeling(g, pll, truth).has_value() &&
                       !verify_labeling(g, distant, truth).has_value();
    all_ok = all_ok && exact;

    table.add_row({fmt_u64(g.num_vertices()), fmt_u64(g.num_edges()), c.family,
                   fmt_double(thm14.average_label_size(), 2),
                   fmt_double(pll.average_label_size(), 2),
                   fmt_double(distant.average_label_size(), 2), greedy_avg,
                   exact ? "ok" : "FAIL"});
  }
  sweep_span.end();
  harness.print(table,
                "Theorem 1.4 on sparse graphs (average hub-set sizes; smaller is better)");

  // Degree-reduction accounting for a heavy-tailed instance.
  {
    auto red_span = harness.phase("degree-reduction");
    Rng rng(9);
    const Graph g = gen::barabasi_albert(400, 2, rng);
    const std::size_t cap = std::max<std::size_t>(1, (g.num_edges() + g.num_vertices() - 1) /
                                                        g.num_vertices());
    const DegreeReduction red = reduce_degree(g, cap);
    red_span.end();
    TextTable dr({"quantity", "original", "reduced"});
    dr.add_row({"vertices", fmt_u64(g.num_vertices()), fmt_u64(red.graph.num_vertices())});
    dr.add_row({"edges", fmt_u64(g.num_edges()), fmt_u64(red.graph.num_edges())});
    dr.add_row({"max degree", fmt_u64(g.max_degree()), fmt_u64(red.graph.max_degree())});
    harness.print(dr, "Degree reduction gadget (Theorem 1.4 step 1) on Barabasi-Albert n=400");
  }

  return harness.finish("THM1.4 sparse", all_ok);
}
