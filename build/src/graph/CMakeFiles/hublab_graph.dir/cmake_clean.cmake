file(REMOVE_RECURSE
  "CMakeFiles/hublab_graph.dir/generators.cpp.o"
  "CMakeFiles/hublab_graph.dir/generators.cpp.o.d"
  "CMakeFiles/hublab_graph.dir/graph.cpp.o"
  "CMakeFiles/hublab_graph.dir/graph.cpp.o.d"
  "CMakeFiles/hublab_graph.dir/io.cpp.o"
  "CMakeFiles/hublab_graph.dir/io.cpp.o.d"
  "CMakeFiles/hublab_graph.dir/transforms.cpp.o"
  "CMakeFiles/hublab_graph.dir/transforms.cpp.o.d"
  "libhublab_graph.a"
  "libhublab_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hublab_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
