#!/usr/bin/env bash
# Full correctness matrix (see docs/correctness.md):
#
#   1. RelWithDebInfo build + full test suite        (preset dev)
#   2. ASan+UBSan build + full test suite            (preset asan-ubsan)
#   3. clang-tidy gate                               (run-tidy; skips w/o clang-tidy)
#   4. hublab_lint incl. header self-containment     (run-lint)
#   5. bench smoke: every bench --smoke + JSON schema validation
#   6. -Wall -Wextra -Werror build of the full tree  (preset werror)
#
# Exits non-zero on the first failing stage.  Run from anywhere.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs="${JOBS:-$(nproc 2>/dev/null || echo 2)}"

stage() {
  echo
  echo "=== check.sh: $* ==="
}

stage "1/6 RelWithDebInfo build + tests"
cmake --preset dev
cmake --build --preset dev -j "${jobs}"
ctest --preset dev -j "${jobs}"

stage "2/6 ASan+UBSan build + tests"
cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "${jobs}"
ctest --preset asan-ubsan -j "${jobs}"

stage "3/6 clang-tidy gate"
cmake --build --preset dev --target run-tidy

stage "4/6 hublab_lint (with header self-containment)"
cmake --build --preset dev --target run-lint

stage "5/6 bench smoke + BENCH_*.json schema validation"
smoke_dir="$(mktemp -d)"
trap 'rm -rf "${smoke_dir}"' EXIT
repo_root="$(pwd -P)"
bench_count=0
for bench in build/dev/bench/bench_*; do
  [ -x "${bench}" ] || continue
  bench_count=$((bench_count + 1))
  echo "--- $(basename "${bench}") --smoke"
  (cd "${smoke_dir}" && "${repo_root}/${bench}" --smoke > /dev/null)
done
json_count="$(find "${smoke_dir}" -name 'BENCH_*.json' | wc -l)"
if [ "${json_count}" -ne "${bench_count}" ]; then
  echo "bench-smoke: ${bench_count} benches but ${json_count} BENCH_*.json files" >&2
  exit 1
fi
build/dev/tools/hublab validate-bench "${smoke_dir}"/BENCH_*.json
echo "bench-smoke: ${bench_count} benches, ${json_count} schema-valid JSON files"

stage "6/6 Werror build"
cmake --preset werror
cmake --build --preset werror -j "${jobs}"

stage "all stages passed"
