file(REMOVE_RECURSE
  "../bench/bench_fig1_construction"
  "../bench/bench_fig1_construction.pdb"
  "CMakeFiles/bench_fig1_construction.dir/bench_fig1_construction.cpp.o"
  "CMakeFiles/bench_fig1_construction.dir/bench_fig1_construction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_construction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
