#include "util/report.hpp"

#include <ostream>

#include "util/bench_schema.hpp"
#include "util/json.hpp"
#include "util/resource.hpp"

namespace hublab {

void write_run_report_json(std::ostream& os, const ReportHeader& header, const Tracer& tracer,
                           metrics::Registry& reg,
                           const std::function<void(JsonWriter&)>& extra_members) {
  JsonWriter w(os);
  w.begin_object();
  w.kv("schema_version", kBenchSchemaVersion);
  w.kv("bench", header.name);
  w.kv("git_rev", header.git_rev);
  w.kv("smoke", header.smoke);
  w.kv("ok", header.ok);
  w.kv("repetitions", header.repetitions);
  w.kv("start_unix_ms", header.start_unix_ms);
  w.kv("peak_rss_bytes", peak_rss_bytes());
  w.kv("threads", header.threads == 0 ? 1 : header.threads);
  if (header.bp_roots >= 0) {
    w.kv("bp_roots", static_cast<std::uint64_t>(header.bp_roots));
  }

  w.key("graphs").begin_array();
  for (const ReportGraph& g : header.graphs) {
    w.begin_object();
    w.kv("family", g.family);
    w.kv("n", g.n);
    w.kv("m", g.m);
    w.end_object();
  }
  w.end_array();

  w.key("phases").begin_array();
  for (const Tracer::Record& r : tracer.records()) {
    if (r.open) continue;
    w.begin_object();
    w.kv("name", r.name);
    w.kv("wall_s", r.dur_s);
    w.kv("depth", static_cast<std::uint64_t>(r.depth));
    w.kv("tid", r.tid);
    if (!r.counter_deltas.empty()) {
      w.key("counters").begin_object();
      for (const metrics::CounterSnapshot& c : r.counter_deltas) w.kv(c.name, c.value);
      w.end_object();
    }
    if (r.hw.valid) {
      // Schema v3 `hw` object: raw deltas plus the derived rates, so the
      // trajectory tooling reads IPC without re-deriving it.
      w.key("hw").begin_object();
      w.kv("cycles", r.hw.cycles);
      w.kv("instructions", r.hw.instructions);
      w.kv("ipc", r.hw.ipc());
      w.kv("l1d_misses", r.hw.l1d_misses);
      w.kv("llc_misses", r.hw.llc_misses);
      w.kv("branch_misses", r.hw.branch_misses);
      w.kv("llc_miss_rate", r.hw.llc_miss_rate());
      w.kv("branch_miss_rate", r.hw.branch_miss_rate());
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();

  w.key("counters").begin_object();
  for (const metrics::CounterSnapshot& c : reg.counters()) w.kv(c.name, c.value);
  w.end_object();

  w.key("gauges").begin_object();
  for (const metrics::GaugeSnapshot& g : reg.gauges()) w.kv(g.name, g.value);
  w.end_object();

  w.key("histograms").begin_object();
  for (const metrics::HistogramSnapshot& h : reg.histograms()) {
    w.key(h.name).begin_object();
    w.kv("count", h.count);
    w.kv("sum", h.sum);
    w.kv("min", h.min);
    w.kv("max", h.max);
    w.kv("p50", h.p50);
    w.kv("p90", h.p90);
    w.kv("p99", h.p99);
    w.end_object();
  }
  w.end_object();

  w.key("sketches").begin_object();
  for (const metrics::SketchSnapshot& s : reg.sketches()) {
    w.key(s.name).begin_object();
    w.kv("count", s.count);
    w.kv("sum", s.sum);
    w.kv("min", s.min);
    w.kv("max", s.max);
    w.kv("p50", s.p50);
    w.kv("p90", s.p90);
    w.kv("p99", s.p99);
    w.kv("p999", s.p999);
    w.kv("rank_error", s.rank_error);
    w.end_object();
  }
  w.end_object();

  // Attribution stores (schema v4) are optional members: most benches
  // register none, and empty objects would churn every committed baseline.
  const auto exemplar_stores = reg.exemplars();
  if (!exemplar_stores.empty()) {
    w.key("exemplars").begin_object();
    for (const metrics::ExemplarStoreSnapshot& store : exemplar_stores) {
      w.key(store.name).begin_object();
      w.kv("count", store.count);
      w.key("buckets").begin_array();
      for (const metrics::ExemplarBucket& bucket : store.buckets) {
        w.begin_object();
        w.kv("le", bucket.le);
        w.kv("count", bucket.count);
        w.key("exemplars").begin_array();
        for (const metrics::Exemplar& e : bucket.exemplars) {
          w.begin_object();
          w.kv("seq", e.seq);
          w.kv("s", static_cast<std::uint64_t>(e.s));
          w.kv("t", static_cast<std::uint64_t>(e.t));
          w.kv("latency_ns", e.latency_ns);
          w.kv("scan_cost", e.scan_cost);
          w.kv("meeting_hub", static_cast<std::uint64_t>(e.meeting_hub));
          w.end_object();
        }
        w.end_array();
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_object();
  }

  const auto heavy = reg.heavy_hitters();
  if (!heavy.empty()) {
    w.key("heavy_hitters").begin_object();
    for (const metrics::HeavyHitterSnapshot& hh : heavy) {
      w.key(hh.name).begin_object();
      w.kv("total_weight", hh.total_weight);
      w.key("entries").begin_array();
      for (const metrics::SpaceSavingSketch::Entry& entry : hh.entries) {
        w.begin_object();
        w.kv("key", entry.key);
        w.kv("weight", entry.weight);
        w.kv("error", entry.error);
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_object();
  }

  if (extra_members) extra_members(w);

  w.end_object();
  os << '\n';
}

}  // namespace hublab
