#pragma once

#include <cstdint>
#include <vector>

/// \file qsketch.hpp
/// Mergeable streaming quantile sketch for latency distributions.
///
/// `QuantileSketch` is a deterministic multi-level compacting sketch in the
/// MRL/KLL family: values land in a level-0 buffer of capacity `k`; when a
/// buffer fills it is sorted and every other element survives with doubled
/// weight into the next level.  The even/odd selection offset alternates
/// per level between compactions, so the same insertion sequence always
/// produces the same sketch (no randomness — `hublab_lint`'s rng-source
/// rule applies here as everywhere).
///
/// Accuracy is *tracked*, not just asymptotic: every compaction of a
/// weight-`w` buffer perturbs any rank by at most `w`, and the sketch sums
/// those contributions, so `rank_error_bound()` returns a certified bound B
/// with the guarantee
///
///     | true_rank(quantile(p)) - ceil(p * count()) |  <=  B
///
/// against the full input stream (B = sum over compactions of the compacted
/// weight, plus one maximum item weight of discretization).  For n inserts
/// into buffers of capacity k this is O(n * log(n/k) / k) — with the default
/// k = 256 about a 3–4% rank error at n = 10^5, far below what telling p50
/// from p99 latency requires.  Space is O(k * log(n/k)).
///
/// `merge()` folds another sketch in level by level (used to combine
/// per-shard or per-thread latency sketches).  Merging is deterministic;
/// differently associated merges of the same operands may compact in a
/// different order and so differ *bitwise*, but every association honours
/// its own `rank_error_bound()`, which is what the tests pin down.
///
/// Queries return actual recorded values (not bucket bounds like
/// `metrics::Histogram`), so the sketch is the right tool for latency
/// quantiles where pow2 buckets are too coarse.

namespace hublab {

class QuantileSketch {
 public:
  /// `buffer_capacity` is rounded up to an even value >= 8.
  explicit QuantileSketch(std::size_t buffer_capacity = kDefaultCapacity);

  static constexpr std::size_t kDefaultCapacity = 256;

  void record(std::uint64_t value);

  /// Fold `other` into this sketch.  Counts, sums and extrema add up; the
  /// certified rank-error bounds are additive as well.
  void merge(const QuantileSketch& other);

  /// Smallest recorded value whose weighted rank reaches ceil(p * count()).
  /// p is clamped to [0, 1]; returns 0 on an empty sketch.
  [[nodiscard]] std::uint64_t quantile(double p) const;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t min() const noexcept;  ///< 0 when empty
  [[nodiscard]] std::uint64_t max() const noexcept { return count_ == 0 ? 0 : max_; }

  /// Certified bound on |true_rank(quantile(p)) - ceil(p*count())|, valid
  /// for every p simultaneously.  Grows with stream length and merges;
  /// reset() zeroes it.
  [[nodiscard]] std::uint64_t rank_error_bound() const noexcept;

  /// Number of values currently held (diagnostic; O(k log(n/k))).
  [[nodiscard]] std::size_t stored_items() const noexcept;

  [[nodiscard]] std::size_t buffer_capacity() const noexcept { return capacity_; }

  void reset();

 private:
  void compact_level(std::size_t level);

  std::size_t capacity_;
  std::vector<std::vector<std::uint64_t>> levels_;  ///< levels_[i] holds weight-2^i items
  std::vector<std::uint8_t> parity_;                ///< per-level alternating selection offset
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = ~0ULL;
  std::uint64_t max_ = 0;
  std::uint64_t compaction_error_ = 0;  ///< sum of compacted weights
};

}  // namespace hublab
