// Fixture: metric/span drift -- one undocumented metric and span next to
// documented ones that stay clean.

namespace fixture {

void record(Registry& reg, Tracer& tracer) {
  reg.counter("fixture.documented").add(1);
  reg.counter("fixture.undocumented").add(1);
  auto span_listed = tracer.span("fixture-listed");
  auto span_rogue = tracer.span("fixture-unlisted");
}

}  // namespace fixture
