#include <gtest/gtest.h>

#include "algo/distance_matrix.hpp"
#include "algo/shortest_paths.hpp"
#include "graph/generators.hpp"
#include "hub/incremental.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace hublab {
namespace {

/// Rebuild ground truth for the *current* dynamic graph by materializing it.
Graph materialize(const Graph& base, const std::vector<std::tuple<Vertex, Vertex, Weight>>& extra) {
  GraphBuilder b(base.num_vertices());
  for (Vertex u = 0; u < base.num_vertices(); ++u) {
    for (const Arc& a : base.arcs(u)) {
      if (a.to > u) b.add_edge(u, a.to, a.weight);
    }
  }
  for (const auto& [u, v, w] : extra) b.add_edge(u, v, w);
  return b.build();
}

void expect_matches_truth(const IncrementalPll& inc, const Graph& current) {
  const auto truth = DistanceMatrix::compute(current);
  const auto n = static_cast<Vertex>(current.num_vertices());
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = 0; v < n; ++v) {
      ASSERT_EQ(inc.query(u, v), truth.at(u, v)) << u << "-" << v;
    }
  }
}

TEST(IncrementalPll, InitialStateMatchesStatic) {
  Rng rng(1);
  const Graph g = gen::connected_gnm(40, 80, rng);
  const IncrementalPll inc(g);
  expect_matches_truth(inc, g);
}

TEST(IncrementalPll, SingleShortcutInsertion) {
  const Graph g = gen::path(12);
  IncrementalPll inc(g);
  EXPECT_EQ(inc.query(0, 11), 11u);
  inc.insert_edge(0, 11);
  EXPECT_EQ(inc.query(0, 11), 1u);
  EXPECT_EQ(inc.query(1, 10), 3u);  // around the new cycle
  expect_matches_truth(inc, materialize(g, {{0, 11, 1}}));
}

TEST(IncrementalPll, BridgingComponents) {
  GraphBuilder b(8);
  for (Vertex v = 0; v + 1 < 4; ++v) b.add_edge(v, v + 1);
  for (Vertex v = 4; v + 1 < 8; ++v) b.add_edge(v, v + 1);
  const Graph g = b.build();
  IncrementalPll inc(g);
  EXPECT_EQ(inc.query(0, 7), kInfDist);
  inc.insert_edge(3, 4);
  EXPECT_EQ(inc.query(0, 7), 7u);
  expect_matches_truth(inc, materialize(g, {{3, 4, 1}}));
}

TEST(IncrementalPll, WeightedInsertions) {
  Rng rng(2);
  Graph g = gen::connected_gnm(30, 60, rng);
  g = gen::randomize_weights(g, 9, rng);
  IncrementalPll inc(g);
  std::vector<std::tuple<Vertex, Vertex, Weight>> extra;
  Rng pick(3);
  for (int i = 0; i < 10; ++i) {
    const auto u = static_cast<Vertex>(pick.next_below(30));
    const auto v = static_cast<Vertex>(pick.next_below(30));
    if (u == v) continue;
    const auto w = static_cast<Weight>(1 + pick.next_below(9));
    inc.insert_edge(u, v, w);
    extra.emplace_back(u, v, w);
  }
  expect_matches_truth(inc, materialize(g, extra));
}

class IncrementalSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IncrementalSweep, RandomInsertionSequences) {
  Rng rng(GetParam());
  const Graph g = gen::gnm(35, 50, rng);  // sparse, possibly disconnected
  IncrementalPll inc(g);
  std::vector<std::tuple<Vertex, Vertex, Weight>> extra;
  Rng pick(GetParam() + 100);
  for (int i = 0; i < 15; ++i) {
    const auto u = static_cast<Vertex>(pick.next_below(35));
    const auto v = static_cast<Vertex>(pick.next_below(35));
    if (u == v) continue;
    inc.insert_edge(u, v);
    extra.emplace_back(u, v, 1);
    if (i % 5 == 4) expect_matches_truth(inc, materialize(g, extra));
  }
  expect_matches_truth(inc, materialize(g, extra));
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalSweep, ::testing::Values(1, 2, 3, 4, 5));

TEST(IncrementalPll, ExportedLabelsAreExact) {
  Rng rng(4);
  const Graph g = gen::connected_gnm(30, 60, rng);
  IncrementalPll inc(g);
  inc.insert_edge(0, 29);
  const Graph current = materialize(g, {{0, 29, 1}});
  const HubLabeling exported = inc.labels();
  const auto truth = DistanceMatrix::compute(current);
  EXPECT_FALSE(verify_labeling(current, exported, truth).has_value());
}

TEST(IncrementalPll, RejectsBadEdges) {
  const Graph g = gen::path(5);
  IncrementalPll inc(g);
  EXPECT_THROW(inc.insert_edge(0, 0), InvalidArgument);
  EXPECT_THROW(inc.insert_edge(0, 9), InvalidArgument);
}

TEST(IncrementalPll, ParallelEdgeImprovesWeight) {
  GraphBuilder b(3);
  b.add_edge(0, 1, 10);
  b.add_edge(1, 2, 10);
  const Graph g = b.build();
  IncrementalPll inc(g);
  EXPECT_EQ(inc.query(0, 2), 20u);
  inc.insert_edge(0, 1, 2);  // better parallel edge
  EXPECT_EQ(inc.query(0, 2), 12u);
}

TEST(UnpackPath, ValidShortestPaths) {
  Rng rng(5);
  const Graph g = gen::connected_gnm(40, 90, rng);
  const HubLabeling labels = pruned_landmark_labeling(g);
  Rng pick(6);
  for (int i = 0; i < 30; ++i) {
    const auto u = static_cast<Vertex>(pick.next_below(40));
    const auto v = static_cast<Vertex>(pick.next_below(40));
    const auto path = unpack_shortest_path(g, labels, u, v);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), u);
    EXPECT_EQ(path.back(), v);
    EXPECT_EQ(path_length(g, path), labels.query(u, v));
  }
}

TEST(UnpackPath, WeightedGraph) {
  Rng rng(7);
  const Graph g = gen::road_like(6, 6, 0.2, 9, rng);
  const HubLabeling labels = pruned_landmark_labeling(g);
  const auto path = unpack_shortest_path(g, labels, 0, static_cast<Vertex>(g.num_vertices() - 1));
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path_length(g, path), labels.query(0, static_cast<Vertex>(g.num_vertices() - 1)));
}

TEST(UnpackPath, UnreachableIsEmpty) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  const Graph g = b.build();
  const HubLabeling labels = pruned_landmark_labeling(g);
  EXPECT_TRUE(unpack_shortest_path(g, labels, 0, 3).empty());
}

TEST(UnpackPath, TrivialPath) {
  const Graph g = gen::path(3);
  const HubLabeling labels = pruned_landmark_labeling(g);
  const auto path = unpack_shortest_path(g, labels, 1, 1);
  ASSERT_EQ(path.size(), 1u);
  EXPECT_EQ(path[0], 1u);
}

}  // namespace
}  // namespace hublab
