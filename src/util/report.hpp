#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/metrics.hpp"
#include "util/trace.hpp"

/// \file report.hpp
/// The one emitter of schema-versioned run reports (`BENCH_<name>.json`,
/// `SERVE_<oracle>.json`).  bench/harness.hpp and oracle/serve.cpp both
/// delegate here, so the document shape that `util/bench_schema.hpp`
/// validates is produced in exactly one place: header fields, per-phase
/// wall times with counter deltas from the tracer, and the full registry
/// contents (counters, gauges, histograms, sketches).  Producers add their
/// own extra top-level members through the `extra_members` callback — the
/// validator is forward-compatible, so extras never break `hublab
/// validate-bench`.

namespace hublab {

class JsonWriter;

struct ReportGraph {
  std::string family;
  std::uint64_t n = 0;
  std::uint64_t m = 0;
};

/// Everything the emitter cannot observe on its own.
struct ReportHeader {
  std::string name;  ///< the JSON `bench` member; non-empty
  std::string git_rev = "unknown";
  bool smoke = false;
  bool ok = false;
  std::uint64_t repetitions = 1;
  std::uint64_t start_unix_ms = 0;  ///< wall-clock start (util/resource.hpp)
  std::uint64_t threads = 1;        ///< worker threads the run used (>= 1)
  /// Bit-parallel root count of the PLL construction kernel (hub/pll.hpp);
  /// negative = not recorded, and the member is omitted from the JSON.
  std::int64_t bp_roots = -1;
  std::vector<ReportGraph> graphs;
};

/// Write one complete report document (peak RSS is sampled here, at the
/// end of the run, which is when it *is* the peak).  `extra_members` may
/// append additional members to the top-level object.
void write_run_report_json(std::ostream& os, const ReportHeader& header, const Tracer& tracer,
                           metrics::Registry& reg,
                           const std::function<void(JsonWriter&)>& extra_members = {});

}  // namespace hublab
