file(REMOVE_RECURSE
  "CMakeFiles/road_grid_oracle.dir/road_grid_oracle.cpp.o"
  "CMakeFiles/road_grid_oracle.dir/road_grid_oracle.cpp.o.d"
  "road_grid_oracle"
  "road_grid_oracle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/road_grid_oracle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
