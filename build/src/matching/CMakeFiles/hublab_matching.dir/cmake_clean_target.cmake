file(REMOVE_RECURSE
  "libhublab_matching.a"
)
