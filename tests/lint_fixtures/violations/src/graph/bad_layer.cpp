// Fixture: layer-upward -- graph/ (rank 1) including oracle/ (rank 3).

#include "oracle/thing.hpp"
