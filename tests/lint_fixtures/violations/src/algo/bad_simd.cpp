// Fixture: simd -- raw SIMD intrinsics outside the src/hub/simd_kernel* TUs.

namespace fixture {

int lane0(const int* p) {
  const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  return _mm_cvtsi128_si32(v);
}

}  // namespace fixture
