file(REMOVE_RECURSE
  "CMakeFiles/hublab_matching.dir/bipartite.cpp.o"
  "CMakeFiles/hublab_matching.dir/bipartite.cpp.o.d"
  "CMakeFiles/hublab_matching.dir/induced_matching.cpp.o"
  "CMakeFiles/hublab_matching.dir/induced_matching.cpp.o.d"
  "libhublab_matching.a"
  "libhublab_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hublab_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
