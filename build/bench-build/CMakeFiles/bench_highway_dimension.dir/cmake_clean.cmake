file(REMOVE_RECURSE
  "../bench/bench_highway_dimension"
  "../bench/bench_highway_dimension.pdb"
  "CMakeFiles/bench_highway_dimension.dir/bench_highway_dimension.cpp.o"
  "CMakeFiles/bench_highway_dimension.dir/bench_highway_dimension.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_highway_dimension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
