// Fixture: baseline grandfathering -- raw-thread silenced by the
// committed tools/lint_baseline.json of this fixture root.

namespace fixture {

void spawn() { std::thread t([] {}); }

}  // namespace fixture
