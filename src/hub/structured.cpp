#include "hub/structured.hpp"

#include <algorithm>

#include "algo/shortest_paths.hpp"
#include "graph/transforms.hpp"
#include "util/assert.hpp"
#include "util/error.hpp"

namespace hublab {

namespace {

/// Centroid decomposition state over one forest.
class CentroidDecomposer {
 public:
  explicit CentroidDecomposer(const Graph& g)
      : g_(g), alive_(g.num_vertices(), true), size_(g.num_vertices(), 0),
        labeling_(g.num_vertices()) {}

  HubLabeling run() {
    std::vector<bool> processed(g_.num_vertices(), false);
    for (Vertex v = 0; v < g_.num_vertices(); ++v) {
      if (!processed[v]) {
        decompose(v);
        // Mark the whole original component processed.
        mark_component(v, processed);
      }
    }
    labeling_.finalize();
    return std::move(labeling_);
  }

 private:
  void mark_component(Vertex start, std::vector<bool>& processed) {
    std::vector<Vertex> stack{start};
    processed[start] = true;
    while (!stack.empty()) {
      const Vertex u = stack.back();
      stack.pop_back();
      for (const Arc& a : g_.arcs(u)) {
        if (!processed[a.to]) {
          processed[a.to] = true;
          stack.push_back(a.to);
        }
      }
    }
  }

  /// Subtree sizes of the alive component containing `root` (iterative DFS).
  std::size_t compute_sizes(Vertex root) {
    order_.clear();
    parent_.assign(g_.num_vertices(), kInvalidVertex);
    std::vector<Vertex> stack{root};
    std::vector<bool> seen(g_.num_vertices(), false);
    seen[root] = true;
    while (!stack.empty()) {
      const Vertex u = stack.back();
      stack.pop_back();
      order_.push_back(u);
      for (const Arc& a : g_.arcs(u)) {
        if (alive_[a.to] && !seen[a.to]) {
          seen[a.to] = true;
          parent_[a.to] = u;
          stack.push_back(a.to);
        }
      }
    }
    for (auto it = order_.rbegin(); it != order_.rend(); ++it) size_[*it] = 1;
    for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
      if (parent_[*it] != kInvalidVertex) size_[parent_[*it]] += size_[*it];
    }
    return order_.size();
  }

  Vertex find_centroid(Vertex root, std::size_t component_size) {
    Vertex c = root;
    for (;;) {
      Vertex heavy = kInvalidVertex;
      for (const Arc& a : g_.arcs(c)) {
        if (!alive_[a.to] || a.to == parent_[c]) continue;
        if (size_[a.to] > component_size / 2) {
          heavy = a.to;
          break;
        }
      }
      if (heavy == kInvalidVertex) return c;
      // Walk into the heavy child.  Once size_[heavy] > comp/2, the "up"
      // component of heavy has size comp - size_[heavy] < comp/2, so the
      // original DFS sizes/parents remain valid for the rest of the walk.
      c = heavy;
    }
  }

  /// Distances from `center` inside the alive component (tree walk).
  void assign_hubs(Vertex center) {
    std::vector<std::pair<Vertex, Dist>> stack{{center, 0}};
    std::vector<bool> seen(g_.num_vertices(), false);
    seen[center] = true;
    while (!stack.empty()) {
      const auto [u, d] = stack.back();
      stack.pop_back();
      labeling_.add_hub(u, center, d);
      for (const Arc& a : g_.arcs(u)) {
        if (alive_[a.to] && !seen[a.to]) {
          seen[a.to] = true;
          stack.emplace_back(a.to, d + a.weight);
        }
      }
    }
  }

  void decompose(Vertex root) {
    const std::size_t component_size = compute_sizes(root);
    const Vertex centroid = find_centroid(root, component_size);
    assign_hubs(centroid);
    alive_[centroid] = false;
    for (const Arc& a : g_.arcs(centroid)) {
      if (alive_[a.to]) decompose(a.to);
    }
  }

  const Graph& g_;
  std::vector<bool> alive_;
  std::vector<std::size_t> size_;
  std::vector<Vertex> parent_;
  std::vector<Vertex> order_;
  HubLabeling labeling_;
};

}  // namespace

HubLabeling tree_centroid_labeling(const Graph& g) {
  // Forest check: edges == vertices - components.
  const std::size_t components = num_connected_components(g);
  if (g.num_edges() + components != g.num_vertices()) {
    throw InvalidArgument("tree_centroid_labeling requires a forest");
  }
  return CentroidDecomposer(g).run();
}

namespace {

/// Validate the grid contract: ids are row-major and edges join 4-neighbors.
void check_grid_shape(const Graph& g, std::size_t rows, std::size_t cols) {
  if (g.num_vertices() != rows * cols) {
    throw InvalidArgument("grid_separator_labeling: vertex count != rows*cols");
  }
  for (Vertex u = 0; u < g.num_vertices(); ++u) {
    const std::size_t r = u / cols;
    const std::size_t c = u % cols;
    for (const Arc& a : g.arcs(u)) {
      const std::size_t r2 = a.to / cols;
      const std::size_t c2 = a.to % cols;
      const std::size_t dr = r > r2 ? r - r2 : r2 - r;
      const std::size_t dc = c > c2 ? c - c2 : c2 - c;
      if (dr + dc != 1) {
        throw InvalidArgument("grid_separator_labeling: non-grid edge found");
      }
    }
  }
}

struct Region {
  std::size_t r0, r1, c0, c1;  // inclusive bounds

  [[nodiscard]] std::size_t height() const { return r1 - r0 + 1; }
  [[nodiscard]] std::size_t width() const { return c1 - c0 + 1; }
};

class GridSeparatorLabeler {
 public:
  GridSeparatorLabeler(const Graph& g, std::size_t rows, std::size_t cols)
      : g_(g), rows_(rows), cols_(cols), labeling_(g.num_vertices()) {}

  HubLabeling run() {
    split(Region{0, rows_ - 1, 0, cols_ - 1});
    labeling_.finalize();
    return std::move(labeling_);
  }

 private:
  [[nodiscard]] Vertex id(std::size_t r, std::size_t c) const {
    return static_cast<Vertex>(r * cols_ + c);
  }

  /// Add every separator vertex as a hub of every vertex in the region,
  /// with exact whole-graph distances.
  void add_separator_hubs(const Region& reg, const std::vector<Vertex>& separator) {
    HUBLAB_ASSERT(reg.r1 < rows_ && reg.c1 < cols_);
    for (Vertex s : separator) {
      const auto dist = sssp_distances(g_, s);
      for (std::size_t r = reg.r0; r <= reg.r1; ++r) {
        for (std::size_t c = reg.c0; c <= reg.c1; ++c) {
          const Vertex v = id(r, c);
          if (dist[v] != kInfDist) labeling_.add_hub(v, s, dist[v]);
        }
      }
    }
  }

  void split(const Region& reg) {
    if (reg.height() == 1 && reg.width() == 1) {
      labeling_.add_hub(id(reg.r0, reg.c0), id(reg.r0, reg.c0), 0);
      return;
    }
    std::vector<Vertex> separator;
    if (reg.width() >= reg.height()) {
      const std::size_t mid = reg.c0 + reg.width() / 2;
      for (std::size_t r = reg.r0; r <= reg.r1; ++r) separator.push_back(id(r, mid));
      add_separator_hubs(reg, separator);
      if (mid > reg.c0) split(Region{reg.r0, reg.r1, reg.c0, mid - 1});
      if (mid < reg.c1) split(Region{reg.r0, reg.r1, mid + 1, reg.c1});
    } else {
      const std::size_t mid = reg.r0 + reg.height() / 2;
      for (std::size_t c = reg.c0; c <= reg.c1; ++c) separator.push_back(id(mid, c));
      add_separator_hubs(reg, separator);
      if (mid > reg.r0) split(Region{reg.r0, mid - 1, reg.c0, reg.c1});
      if (mid < reg.r1) split(Region{mid + 1, reg.r1, reg.c0, reg.c1});
    }
  }

  const Graph& g_;
  std::size_t rows_;
  std::size_t cols_;
  HubLabeling labeling_;
};

}  // namespace

HubLabeling grid_separator_labeling(const Graph& g, std::size_t rows, std::size_t cols) {
  if (rows == 0 || cols == 0) throw InvalidArgument("grid_separator_labeling: empty grid");
  check_grid_shape(g, rows, cols);
  return GridSeparatorLabeler(g, rows, cols).run();
}

namespace {

class BfsSeparatorLabeler {
 public:
  explicit BfsSeparatorLabeler(const Graph& g)
      : g_(g), in_region_(g.num_vertices(), 0), hop_(g.num_vertices(), kInfDist),
        labeling_(g.num_vertices()) {}

  HubLabeling run() {
    // Seed the recursion with each connected component.
    const auto comp = connected_components(g_);
    std::uint32_t num_comps = 0;
    for (Vertex v = 0; v < g_.num_vertices(); ++v) {
      num_comps = std::max(num_comps, comp[v] + 1);
    }
    std::vector<std::vector<Vertex>> regions(num_comps);
    for (Vertex v = 0; v < g_.num_vertices(); ++v) regions[comp[v]].push_back(v);
    for (auto& region : regions) split(std::move(region));
    labeling_.finalize();
    return std::move(labeling_);
  }

 private:
  /// Hop-BFS restricted to the current region (marked with `epoch_`).
  /// Fills hop_ for region vertices; returns the max level and a farthest
  /// vertex.
  std::pair<Dist, Vertex> region_bfs(const std::vector<Vertex>& region, Vertex root) {
    for (Vertex v : region) hop_[v] = kInfDist;
    std::vector<Vertex> frontier{root};
    hop_[root] = 0;
    Dist level = 0;
    Vertex far = root;
    std::vector<Vertex> next;
    while (!frontier.empty()) {
      for (Vertex u : frontier) {
        for (const Arc& a : g_.arcs(u)) {
          if (in_region_[a.to] == epoch_ && hop_[a.to] == kInfDist) {
            hop_[a.to] = level + 1;
            far = a.to;
            next.push_back(a.to);
          }
        }
      }
      ++level;
      frontier.swap(next);
      next.clear();
    }
    return {level - 1, far};
  }

  void split(std::vector<Vertex> region) {
    HUBLAB_ASSERT(!region.empty());
    if (region.size() == 1) {
      labeling_.add_hub(region[0], region[0], 0);
      return;
    }
    ++epoch_;
    for (Vertex v : region) in_region_[v] = epoch_;

    // Two-sweep eccentric root, then take the middle BFS level as separator.
    auto [depth1, far1] = region_bfs(region, region[0]);
    (void)depth1;
    auto [depth, far2] = region_bfs(region, far1);
    (void)far2;
    HUBLAB_ASSERT_MSG(depth >= 1, "connected region of size >= 2 must have depth >= 1");
    const Dist mid = (depth + 1) / 2;

    std::vector<Vertex> separator;
    for (Vertex v : region) {
      if (hop_[v] == mid) separator.push_back(v);
    }
    HUBLAB_ASSERT(!separator.empty());

    // Whole-graph distances from every separator vertex to the region.
    for (Vertex s : separator) {
      const auto dist = sssp_distances(g_, s);
      for (Vertex v : region) {
        if (dist[v] != kInfDist) labeling_.add_hub(v, s, dist[v]);
      }
      in_region_[s] = 0;  // remove from region
    }

    // Components of region \ separator, found by BFS over surviving marks.
    const std::uint32_t survivors_epoch = epoch_;
    std::vector<Vertex> stack;
    for (Vertex v : region) {
      if (in_region_[v] != survivors_epoch) continue;
      std::vector<Vertex> piece;
      stack.push_back(v);
      in_region_[v] = 0;
      while (!stack.empty()) {
        const Vertex u = stack.back();
        stack.pop_back();
        piece.push_back(u);
        for (const Arc& a : g_.arcs(u)) {
          if (in_region_[a.to] == survivors_epoch) {
            in_region_[a.to] = 0;
            stack.push_back(a.to);
          }
        }
      }
      split(std::move(piece));
    }
  }

  const Graph& g_;
  std::vector<std::uint32_t> in_region_;
  std::vector<Dist> hop_;
  HubLabeling labeling_;
  std::uint32_t epoch_ = 0;
};

}  // namespace

HubLabeling bfs_separator_labeling(const Graph& g) { return BfsSeparatorLabeler(g).run(); }

}  // namespace hublab
