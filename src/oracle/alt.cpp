#include "oracle/alt.hpp"

#include <queue>

#include "algo/shortest_paths.hpp"
#include "util/error.hpp"

namespace hublab {

std::vector<Vertex> farthest_landmarks(const Graph& g, std::size_t count, std::uint64_t seed) {
  const auto n = static_cast<Vertex>(g.num_vertices());
  if (n == 0 || count == 0) return {};
  count = std::min<std::size_t>(count, n);

  Rng rng(seed);
  std::vector<Vertex> landmarks{static_cast<Vertex>(rng.next_below(n))};
  std::vector<Dist> closest = sssp_distances(g, landmarks[0]);
  while (landmarks.size() < count) {
    // Farthest *finite* vertex from the current set (unreachable ones are
    // picked too, one per component, since kInfDist sorts last but we
    // prefer finite maxima; fall back to any unreached vertex).
    Vertex best = kInvalidVertex;
    Dist best_d = 0;
    Vertex unreached = kInvalidVertex;
    for (Vertex v = 0; v < n; ++v) {
      if (closest[v] == kInfDist) {
        unreached = v;
        continue;
      }
      if (closest[v] >= best_d) {
        best_d = closest[v];
        best = v;
      }
    }
    if (unreached != kInvalidVertex) best = unreached;  // cover new component
    if (best == kInvalidVertex) break;
    landmarks.push_back(best);
    const auto d = sssp_distances(g, best);
    for (Vertex v = 0; v < n; ++v) closest[v] = std::min(closest[v], d[v]);
  }
  return landmarks;
}

AltOracle::AltOracle(const Graph& g, const std::vector<Vertex>& landmarks) : g_(&g) {
  if (landmarks.empty()) throw InvalidArgument("ALT needs at least one landmark");
  rows_.reserve(landmarks.size());
  for (Vertex l : landmarks) rows_.push_back(sssp_distances(g, l));
}

Dist AltOracle::potential(Vertex u, Vertex t) const {
  Dist best = 0;
  for (const auto& row : rows_) {
    if (row[u] == kInfDist || row[t] == kInfDist) continue;
    const Dist diff = row[u] > row[t] ? row[u] - row[t] : row[t] - row[u];
    best = std::max(best, diff);
  }
  return best;
}

Dist AltOracle::distance(Vertex s, Vertex t) const {
  const Graph& g = *g_;
  HUBLAB_ASSERT(s < g.num_vertices() && t < g.num_vertices());
  if (s == t) return 0;

  std::vector<Dist> dist(g.num_vertices(), kInfDist);
  std::vector<bool> settled(g.num_vertices(), false);
  using Item = std::pair<Dist, Vertex>;  // (g + h, vertex)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[s] = 0;
  pq.emplace(potential(s, t), s);
  last_settled_ = 0;
  while (!pq.empty()) {
    const auto [f, u] = pq.top();
    (void)f;
    pq.pop();
    if (settled[u]) continue;
    settled[u] = true;
    ++last_settled_;
    if (u == t) return dist[t];
    for (const Arc& a : g.arcs(u)) {
      const Dist nd = dist[u] + a.weight;
      if (nd < dist[a.to]) {
        dist[a.to] = nd;
        pq.emplace(nd + potential(a.to, t), a.to);
      }
    }
  }
  return dist[t];
}

}  // namespace hublab
