// Fixture: raw-io -- diagnostics bypassing the structured logger.

namespace fixture {

void grumble() { std::cerr << "boom"; }

}  // namespace fixture
