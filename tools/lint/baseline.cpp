// Baseline loading: tools/lint_baseline.json grandfathers known findings
// by (file, rule) so the analyzer can be adopted on a codebase with
// pre-existing violations without suppressing new ones in clean files.
// This repo keeps the baseline empty; the format exists for the fixture
// tests and for downstream forks.

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/util/json.hpp"
#include "tools/lint/lint.hpp"

namespace hublab::lint {

std::vector<BaselineEntry> load_baseline(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read baseline file: " + path.string());
  std::ostringstream buf;
  buf << in.rdbuf();

  JsonValue doc;
  try {
    doc = parse_json(buf.str());
  } catch (const std::exception& e) {
    throw std::runtime_error("malformed baseline " + path.string() + ": " + e.what());
  }
  if (!doc.is_object()) {
    throw std::runtime_error("malformed baseline " + path.string() + ": root is not an object");
  }
  const JsonValue* version = doc.find("version");
  if (version == nullptr || !version->is_number() || version->number_value != 1.0) {
    throw std::runtime_error("malformed baseline " + path.string() +
                             ": expected {\"version\": 1, ...}");
  }
  const JsonValue* findings = doc.find("findings");
  if (findings == nullptr || !findings->is_array()) {
    throw std::runtime_error("malformed baseline " + path.string() +
                             ": \"findings\" must be an array");
  }

  std::vector<BaselineEntry> entries;
  entries.reserve(findings->array_items.size());
  for (const JsonValue& item : findings->array_items) {
    const JsonValue* file = item.find("file");
    const JsonValue* rule = item.find("rule");
    if (file == nullptr || !file->is_string() || rule == nullptr || !rule->is_string()) {
      throw std::runtime_error("malformed baseline " + path.string() +
                               ": each finding needs string \"file\" and \"rule\"");
    }
    entries.push_back(BaselineEntry{file->string_value, rule->string_value});
  }
  return entries;
}

}  // namespace hublab::lint
