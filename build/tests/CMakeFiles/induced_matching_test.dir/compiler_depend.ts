# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for induced_matching_test.
