// Concurrency-discipline pass (src/ only):
//
//   atomic-order   every operation on a declared std::atomic names an
//                  explicit std::memory_order; operator overloads
//                  (=, ++, +=) are banned outright because they hide a
//                  seq_cst fence the reader cannot see.
//   volatile-sync  volatile is not a synchronization primitive; data shared
//                  between threads uses std::atomic with explicit orders.
//   mutex-guard    declared mutexes are locked through RAII guards
//                  (scoped_lock / lock_guard / unique_lock / shared_lock)
//                  in the declaring TU; direct .lock()/.unlock() calls are
//                  banned, and a mutex no guard ever names is dead weight
//                  or locked somewhere the reader cannot audit.

#include <cctype>
#include <set>

#include "tools/lint/lint.hpp"

namespace hublab::lint {

namespace {

std::size_t skip_template_args(const std::string& text, std::size_t pos) {
  if (pos >= text.size() || text[pos] != '<') return std::string::npos;
  std::size_t depth = 0;
  while (pos < text.size()) {
    if (text[pos] == '<') ++depth;
    if (text[pos] == '>' && --depth == 0) return pos + 1;
    ++pos;
  }
  return std::string::npos;
}

/// Names declared as `std::<type_token><...>` in `flat` (members, locals,
/// parameters, arrays).
std::set<std::string> declared_qualified(const std::string& flat, const std::string& type) {
  std::set<std::string> names;
  const std::string token = "std::" + type;
  std::size_t pos = 0;
  while ((pos = flat.find(token, pos)) != std::string::npos) {
    const std::size_t start = pos;
    pos += token.size();
    if (start > 0 && is_ident_char(flat[start - 1])) continue;
    std::size_t p = pos;
    if (p < flat.size() && is_ident_char(flat[p])) continue;  // longer type name
    if (p < flat.size() && flat[p] == '<') {
      p = skip_template_args(flat, p);
      if (p == std::string::npos) continue;
    }
    while (p < flat.size() &&
           (std::isspace(static_cast<unsigned char>(flat[p])) != 0 || flat[p] == '&' ||
            flat[p] == '*')) {
      ++p;
    }
    std::size_t end = p;
    while (end < flat.size() && is_ident_char(flat[end])) ++end;
    if (end == p) continue;
    if (end < flat.size() && flat[end] == '(') continue;  // function taking the type
    names.insert(flat.substr(p, end - p));
  }
  return names;
}

/// Occurrences of `name` as a whole identifier in `flat`; calls `fn(pos)`.
template <typename Fn>
void for_each_occurrence(const std::string& flat, const std::string& name, Fn&& fn) {
  std::size_t pos = 0;
  while ((pos = flat.find(name, pos)) != std::string::npos) {
    const std::size_t start = pos;
    pos += name.size();
    const bool left_ok = start == 0 || !is_ident_char(flat[start - 1]);
    const bool right_ok = pos >= flat.size() || !is_ident_char(flat[pos]);
    if (left_ok && right_ok) fn(start);
  }
}

void check_atomics(const SourceFile& f, Sink& sink) {
  const std::set<std::string> atomics = declared_qualified(f.flat, "atomic");
  if (atomics.empty()) return;
  static const std::set<std::string> kOps = {
      "load",      "store",      "exchange",
      "fetch_add", "fetch_sub",  "fetch_and", "fetch_or", "fetch_xor",
      "compare_exchange_weak",   "compare_exchange_strong"};

  const std::string& flat = f.flat;
  for (const std::string& name : atomics) {
    for_each_occurrence(flat, name, [&](std::size_t start) {
      std::size_t p = start + name.size();
      // Member operation: name.op(args...)
      if (p < flat.size() && flat[p] == '.') {
        std::size_t op_end = ++p;
        while (op_end < flat.size() && is_ident_char(flat[op_end])) ++op_end;
        const std::string op = flat.substr(p, op_end - p);
        if (kOps.count(op) == 0) return;
        std::size_t open = op_end;
        while (open < flat.size() &&
               std::isspace(static_cast<unsigned char>(flat[open])) != 0) {
          ++open;
        }
        if (open >= flat.size() || flat[open] != '(') return;
        std::size_t depth = 0;
        std::size_t close = open;
        while (close < flat.size()) {
          if (flat[close] == '(') ++depth;
          if (flat[close] == ')' && --depth == 0) break;
          ++close;
        }
        const std::string args = flat.substr(open, close - open);
        if (args.find("memory_order") == std::string::npos) {
          sink.add(f, f.flat_line[start], "atomic-order",
                   "`" + name + "." + op + "` names no explicit std::memory_order; " +
                       "spell the ordering out (memory_order_relaxed for counters, " +
                       "acquire/release for handoffs) so the synchronization intent " +
                       "is auditable");
        }
        return;
      }
      // Operator forms hide a seq_cst access: name =, name +=, name++, ...
      std::size_t q = p;
      while (q < flat.size() && (flat[q] == ' ' || flat[q] == '\t')) ++q;
      const char c0 = q < flat.size() ? flat[q] : '\0';
      const char c1 = q + 1 < flat.size() ? flat[q + 1] : '\0';
      const bool compound = (c0 == '+' || c0 == '-' || c0 == '|' || c0 == '&' || c0 == '^') &&
                            c1 == '=';
      const bool incdec = (c0 == '+' && c1 == '+') || (c0 == '-' && c1 == '-');
      const bool plain_assign = c0 == '=' && c1 != '=';
      if (!compound && !incdec && !plain_assign) return;
      // Skip the declaration itself (`std::atomic<T> name = ...;`).
      const std::string& decl_line = f.code[f.flat_line[start] - 1];
      if (decl_line.find("atomic") != std::string::npos) return;
      sink.add(f, f.flat_line[start], "atomic-order",
               "operator access to atomic `" + name + "` is an implicit seq_cst " +
                   "operation; use load/store/fetch_* with an explicit std::memory_order");
    });
  }
}

void check_volatile(const SourceFile& f, Sink& sink) {
  for (std::size_t i = 0; i < f.code.size(); ++i) {
    if (contains_identifier(f.code[i], "volatile")) {
      sink.add(f, i + 1, "volatile-sync",
               "volatile is not a synchronization primitive (no atomicity, no ordering); "
               "use std::atomic with an explicit std::memory_order");
    }
  }
}

void check_mutexes(const SourceFile& f, Sink& sink) {
  std::set<std::string> mutexes;
  for (const char* type : {"mutex", "recursive_mutex", "timed_mutex", "shared_mutex"}) {
    for (const std::string& name : declared_qualified(f.flat, type)) mutexes.insert(name);
  }
  if (mutexes.empty()) return;

  static const std::vector<std::string> kGuards = {"scoped_lock", "lock_guard", "unique_lock",
                                                   "shared_lock"};
  const std::string& flat = f.flat;
  for (const std::string& name : mutexes) {
    bool direct_lock = false;
    for_each_occurrence(flat, name, [&](std::size_t start) {
      std::size_t p = start + name.size();
      if (p >= flat.size() || flat[p] != '.') return;
      std::size_t op_end = ++p;
      while (op_end < flat.size() && is_ident_char(flat[op_end])) ++op_end;
      const std::string op = flat.substr(p, op_end - p);
      if (op != "lock" && op != "unlock" && op != "try_lock") return;
      direct_lock = true;
      sink.add(f, f.flat_line[start], "mutex-guard",
               "direct `" + name + "." + op + "()` call; acquire the mutex through a RAII "
                   "guard (std::scoped_lock / std::unique_lock) so no exit path leaks "
                   "the lock");
    });
    if (direct_lock) continue;

    bool guarded = false;
    for (std::size_t i = 0; i < f.code.size() && !guarded; ++i) {
      const std::string& line = f.code[i];
      if (!contains_identifier(line, name)) continue;
      for (const std::string& guard : kGuards) {
        if (line.find(guard) != std::string::npos) {
          guarded = true;
          break;
        }
      }
    }
    if (!guarded) {
      // Anchor at the declaration.
      std::size_t decl_line = 1;
      const std::size_t at = flat.find(name);
      if (at != std::string::npos) decl_line = f.flat_line[at];
      sink.add(f, decl_line, "mutex-guard",
               "mutex `" + name + "` is never locked through a RAII guard in this TU; " +
                   "lock it with std::scoped_lock (or document the external locking "
                   "protocol with a suppression)");
    }
  }
}

}  // namespace

void pass_concurrency(const std::vector<SourceFile>& files, const Options& opt, Sink& sink) {
  (void)opt;
  for (const SourceFile& f : files) {
    if (!f.in_src) continue;
    check_atomics(f, sink);
    check_volatile(f, sink);
    check_mutexes(f, sink);
  }
}

}  // namespace hublab::lint
