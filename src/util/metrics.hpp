#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/exemplar.hpp"
#include "util/heavyhitter.hpp"
#include "util/qsketch.hpp"

/// \file metrics.hpp
/// Named counters, gauges and histograms for algorithm-level observability.
///
/// The instrumented hot paths (PLL pruning, Dijkstra relaxations, CH
/// contraction, the Theorem 4.1 pipeline, the Sum-Index protocol) report
/// into a process-global `Registry`; benches and the `hublab trace` CLI
/// read it back out.  Design constraints:
///
///  - **Hot-path cost**: a counter increment is one relaxed atomic add.
///    Call sites hoist the `Counter&` out of their loops (`counter()` takes
///    a registry lock) and, where even an atomic per iteration would show,
///    batch into a local and `add()` once.
///  - **Compiled out**: building with `HUBLAB_METRICS=OFF` (CMake) defines
///    `HUBLAB_METRICS_ENABLED=0` and swaps every type below for an empty
///    inline stub with the same API, so instrumentation costs nothing and
///    call sites need no `#if`.
///  - **No stdout**: all dumping takes an explicit `std::ostream&`
///    (hublab_lint's stdout-in-library rule applies here too).
///
/// Semantics: counters are monotone `uint64_t` accumulators that wrap
/// modulo 2^64 on overflow and zero on `reset()`; gauges are settable
/// signed values (last write wins); histograms bucket values by bit width
/// (bucket 0 holds value 0, bucket i holds [2^(i-1), 2^i - 1]) and report
/// percentiles as the inclusive upper bound of the covering bucket;
/// sketches (util/qsketch.hpp) hold mergeable streaming quantile sketches
/// whose percentiles are actual recorded values — the serving layer's
/// latency distributions live there.

namespace hublab::metrics {

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  std::int64_t value = 0;
};

struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< 0 when empty
  std::uint64_t max = 0;  ///< 0 when empty
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;
  /// (inclusive upper bound, count) for each nonempty bucket, ascending;
  /// feeds the Prometheus cumulative `_bucket` series.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
};

/// Quantiles are actual recorded values (see util/qsketch.hpp), unlike the
/// pow2 bucket bounds of HistogramSnapshot — use sketches for latencies.
struct SketchSnapshot {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< 0 when empty
  std::uint64_t max = 0;  ///< 0 when empty
  std::uint64_t p50 = 0;
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t p999 = 0;
  std::uint64_t rank_error = 0;  ///< certified rank-error bound of the quantiles
};

/// Captured tail-latency witnesses (util/exemplar.hpp) for one store.
struct ExemplarStoreSnapshot {
  std::string name;
  std::uint64_t count = 0;                ///< queries offered across all buckets
  std::vector<ExemplarBucket> buckets;    ///< nonempty buckets, ascending le
};

/// Retained heavy hitters (util/heavyhitter.hpp) for one sketch.
struct HeavyHitterSnapshot {
  std::string name;
  std::uint64_t total_weight = 0;
  std::vector<SpaceSavingSketch::Entry> entries;  ///< weight descending
};

#if !defined(HUBLAB_METRICS_ENABLED)
#define HUBLAB_METRICS_ENABLED 1
#endif

#if HUBLAB_METRICS_ENABLED

/// Monotone event counter.  Wraps modulo 2^64; relaxed atomics (per-metric
/// totals need no ordering with respect to other memory).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins signed value (pipeline stage sizes, config knobs).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Power-of-two-bucket histogram of unsigned values (label sizes, search
/// space sizes).  Lock-free; percentile() is approximate with relative
/// error < 2x by construction, which is enough to track growth laws.
class Histogram {
 public:
  static constexpr std::size_t kNumBuckets = 65;  // bit_width(v) in [0, 64]

  void record(std::uint64_t v) noexcept;
  void reset() noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t min() const noexcept;  ///< 0 when empty
  [[nodiscard]] std::uint64_t max() const noexcept;  ///< 0 when empty

  /// Smallest bucket upper bound b such that at least p * count() recorded
  /// values are <= b.  p in [0, 1]; 0 when empty.
  [[nodiscard]] std::uint64_t percentile(double p) const noexcept;

  [[nodiscard]] std::uint64_t bucket_count(std::size_t bucket) const noexcept;

  /// Inclusive upper bound of a bucket: 0 for bucket 0, 2^i - 1 for bucket i.
  [[nodiscard]] static std::uint64_t bucket_upper_bound(std::size_t bucket) noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ULL};
  std::atomic<std::uint64_t> max_{0};
};

/// Exact-quantile latency sketch (a mutex-guarded QuantileSketch; the
/// other metric types are lock-free, but a sketch record is a buffer push
/// and the serving loop batches around it anyway).
class Sketch {
 public:
  void record(std::uint64_t v) {
    const std::scoped_lock lock(mutex_);
    sketch_.record(v);
  }
  void merge(const QuantileSketch& other) {
    const std::scoped_lock lock(mutex_);
    sketch_.merge(other);
  }
  void reset() {
    const std::scoped_lock lock(mutex_);
    sketch_.reset();
  }
  /// Consistent copy for querying quantiles.
  [[nodiscard]] QuantileSketch snapshot() const {
    const std::scoped_lock lock(mutex_);
    return sketch_;
  }

 private:
  mutable std::mutex mutex_;
  QuantileSketch sketch_;
};

/// Mutex-guarded ExemplarReservoir (captures happen post-loop or per-chunk,
/// never inside the measured region, so a lock is fine).
class ExemplarStore {
 public:
  /// Replace the reservoir, fixing seed and per-bucket capacity.  Drops
  /// prior captures; call before a capture run, not during one.
  void configure(std::uint64_t seed, std::size_t per_bucket) {
    const std::scoped_lock lock(mutex_);
    reservoir_ = ExemplarReservoir(seed, per_bucket);
  }
  void offer(const Exemplar& e) {
    const std::scoped_lock lock(mutex_);
    reservoir_.offer(e);
  }
  void merge(const ExemplarReservoir& other) {
    const std::scoped_lock lock(mutex_);
    reservoir_.merge(other);
  }
  void reset() {
    const std::scoped_lock lock(mutex_);
    reservoir_.reset();
  }
  /// Consistent copy for snapshotting buckets.
  [[nodiscard]] ExemplarReservoir snapshot() const {
    const std::scoped_lock lock(mutex_);
    return reservoir_;
  }

 private:
  mutable std::mutex mutex_;
  ExemplarReservoir reservoir_;
};

/// Mutex-guarded SpaceSavingSketch with the same locking rationale.
class HeavyHitter {
 public:
  void add(std::uint64_t key, std::uint64_t weight = 1) {
    const std::scoped_lock lock(mutex_);
    sketch_.add(key, weight);
  }
  void merge(const SpaceSavingSketch& other) {
    const std::scoped_lock lock(mutex_);
    sketch_.merge(other);
  }
  void reset() {
    const std::scoped_lock lock(mutex_);
    sketch_.reset();
  }
  [[nodiscard]] SpaceSavingSketch snapshot() const {
    const std::scoped_lock lock(mutex_);
    return sketch_;
  }

 private:
  mutable std::mutex mutex_;
  SpaceSavingSketch sketch_;
};

/// Named metric store.  Lookup interns the name on first use and returns a
/// reference that stays valid for the registry's lifetime; snapshots are
/// sorted by name so every dump is deterministic.
class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);
  Sketch& sketch(std::string_view name);
  ExemplarStore& exemplar(std::string_view name);
  HeavyHitter& heavy_hitter(std::string_view name);

  [[nodiscard]] std::vector<CounterSnapshot> counters() const;
  [[nodiscard]] std::vector<GaugeSnapshot> gauges() const;
  [[nodiscard]] std::vector<HistogramSnapshot> histograms() const;
  [[nodiscard]] std::vector<SketchSnapshot> sketches() const;
  [[nodiscard]] std::vector<ExemplarStoreSnapshot> exemplars() const;
  [[nodiscard]] std::vector<HeavyHitterSnapshot> heavy_hitters() const;

  /// Zero every registered metric (registrations persist).
  void reset();

  /// Human-readable dump (one metric per line, sorted).
  void dump(std::ostream& out) const;

 private:
  struct Impl;
  Impl* impl_;
};

/// The process-global registry the instrumented library code reports into.
Registry& registry();

#else  // HUBLAB_METRICS_ENABLED == 0: zero-cost stubs, identical API.

class Counter {
 public:
  void add(std::uint64_t = 1) noexcept {}
  void reset() noexcept {}
  [[nodiscard]] std::uint64_t value() const noexcept { return 0; }
};

class Gauge {
 public:
  void set(std::int64_t) noexcept {}
  void add(std::int64_t) noexcept {}
  void reset() noexcept {}
  [[nodiscard]] std::int64_t value() const noexcept { return 0; }
};

class Histogram {
 public:
  static constexpr std::size_t kNumBuckets = 65;
  void record(std::uint64_t) noexcept {}
  void reset() noexcept {}
  [[nodiscard]] std::uint64_t count() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t min() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t max() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t percentile(double) const noexcept { return 0; }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t) const noexcept { return 0; }
  [[nodiscard]] static std::uint64_t bucket_upper_bound(std::size_t) noexcept { return 0; }
};

class Sketch {
 public:
  void record(std::uint64_t) noexcept {}
  void merge(const QuantileSketch&) noexcept {}
  void reset() noexcept {}
  [[nodiscard]] QuantileSketch snapshot() const { return QuantileSketch{}; }
};

class ExemplarStore {
 public:
  void configure(std::uint64_t, std::size_t) noexcept {}
  void offer(const Exemplar&) noexcept {}
  void merge(const ExemplarReservoir&) noexcept {}
  void reset() noexcept {}
  [[nodiscard]] ExemplarReservoir snapshot() const { return ExemplarReservoir{}; }
};

class HeavyHitter {
 public:
  void add(std::uint64_t, std::uint64_t = 1) noexcept {}
  void merge(const SpaceSavingSketch&) noexcept {}
  void reset() noexcept {}
  [[nodiscard]] SpaceSavingSketch snapshot() const { return SpaceSavingSketch{}; }
};

class Registry {
 public:
  Counter& counter(std::string_view) noexcept { return counter_; }
  Gauge& gauge(std::string_view) noexcept { return gauge_; }
  Histogram& histogram(std::string_view) noexcept { return histogram_; }
  Sketch& sketch(std::string_view) noexcept { return sketch_; }
  ExemplarStore& exemplar(std::string_view) noexcept { return exemplar_; }
  HeavyHitter& heavy_hitter(std::string_view) noexcept { return heavy_hitter_; }
  [[nodiscard]] std::vector<CounterSnapshot> counters() const { return {}; }
  [[nodiscard]] std::vector<GaugeSnapshot> gauges() const { return {}; }
  [[nodiscard]] std::vector<HistogramSnapshot> histograms() const { return {}; }
  [[nodiscard]] std::vector<SketchSnapshot> sketches() const { return {}; }
  [[nodiscard]] std::vector<ExemplarStoreSnapshot> exemplars() const { return {}; }
  [[nodiscard]] std::vector<HeavyHitterSnapshot> heavy_hitters() const { return {}; }
  void reset() noexcept {}
  void dump(std::ostream&) const {}

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
  Sketch sketch_;
  ExemplarStore exemplar_;
  HeavyHitter heavy_hitter_;
};

inline Registry& registry() {
  static Registry r;
  return r;
}

#endif  // HUBLAB_METRICS_ENABLED

}  // namespace hublab::metrics
