#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

/// \file workload.hpp
/// Deterministic query-pair generation, shared by the serve-sim driver
/// (oracle/serve.hpp), the query microbenches (bench_query_oracles) and
/// tests — one implementation, so "the same workload" means the same
/// pairs everywhere a gauge compares two query paths.
///
/// Workloads (all deterministic given the seed):
///  - `uniform`: independent uniform endpoints — the adversarial baseline;
///  - `zipf`:    endpoints drawn from a Zipf(~1.0) popularity ranking over
///               vertex ids, approximating skewed production traffic;
///  - `near`:    u uniform, v the endpoint of a short random walk from u
///               (1..4 hops) — local queries, the PLL fast path;
///  - `far`:     endpoints from opposite distance quartiles of a BFS/
///               Dijkstra sweep — long-range queries, the worst case the
///               lower-bound gadgets are built from.

namespace hublab::serve {

enum class WorkloadKind { kUniform, kZipf, kNear, kFar };

[[nodiscard]] std::string_view workload_kind_name(WorkloadKind kind) noexcept;
[[nodiscard]] std::optional<WorkloadKind> parse_workload_kind(std::string_view name) noexcept;

/// Deterministic query-pair generator for one workload (exposed for tests
/// and future replay tooling).  Pairs are over [0, n); the graph is needed
/// for the near/far structure.
class WorkloadGenerator {
 public:
  WorkloadGenerator(const Graph& g, WorkloadKind kind, std::uint64_t seed);

  /// Next (source, target) pair.
  [[nodiscard]] std::pair<Vertex, Vertex> next();

  /// `count` pairs in one block (the batched-query benches).
  [[nodiscard]] std::vector<std::pair<Vertex, Vertex>> block(std::size_t count);

 private:
  [[nodiscard]] Vertex zipf_vertex();
  [[nodiscard]] Vertex walk_from(Vertex u);

  const Graph& g_;
  WorkloadKind kind_;
  Rng rng_;
  std::vector<double> zipf_cdf_;       ///< cumulative popularity, zipf only
  std::vector<Vertex> near_pool_;      ///< far workload: bottom distance quartile
  std::vector<Vertex> far_pool_;       ///< far workload: top distance quartile
};

}  // namespace hublab::serve
