#include <gtest/gtest.h>

#include "algo/distance_matrix.hpp"
#include "graph/generators.hpp"
#include "graph/transforms.hpp"
#include "oracle/contraction_hierarchy.hpp"
#include "util/rng.hpp"

namespace hublab {
namespace {

void expect_ch_exact(const Graph& g) {
  const ContractionHierarchy ch(g);
  const auto truth = DistanceMatrix::compute(g);
  const auto n = static_cast<Vertex>(g.num_vertices());
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = 0; v < n; ++v) {
      ASSERT_EQ(ch.distance(u, v), truth.at(u, v)) << u << "-" << v;
    }
  }
}

TEST(ContractionHierarchy, PathGraph) { expect_ch_exact(gen::path(12)); }

TEST(ContractionHierarchy, CycleGraph) { expect_ch_exact(gen::cycle(11)); }

TEST(ContractionHierarchy, GridGraph) { expect_ch_exact(gen::grid(5, 5)); }

TEST(ContractionHierarchy, StarAndComplete) {
  expect_ch_exact(gen::star(15));
  expect_ch_exact(gen::complete(8));
}

TEST(ContractionHierarchy, WeightedRoadLike) {
  Rng rng(1);
  expect_ch_exact(gen::road_like(5, 5, 0.3, 9, rng));
}

TEST(ContractionHierarchy, Disconnected) {
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4, 7);
  const Graph g = b.build();
  const ContractionHierarchy ch(g);
  EXPECT_EQ(ch.distance(0, 2), 2u);
  EXPECT_EQ(ch.distance(3, 4), 7u);
  EXPECT_EQ(ch.distance(0, 3), kInfDist);
  EXPECT_EQ(ch.distance(5, 5), 0u);
}

class ChRandomSweep : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(ChRandomSweep, ExactOnRandomGraphs) {
  const auto [seed, weighted] = GetParam();
  Rng rng(seed);
  Graph g = gen::gnm(60, 120, rng);
  if (weighted != 0) g = gen::randomize_weights(g, 12, rng);
  expect_ch_exact(g);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ChRandomSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4), ::testing::Values(0, 1)));

TEST(ContractionHierarchy, LargeWeightsNoOverflow) {
  // Weights near the 32-bit limit: shortcut chains must not truncate.
  GraphBuilder b(5);
  for (Vertex v = 0; v + 1 < 5; ++v) b.add_edge(v, v + 1, 0xf0000000u);
  const Graph g = b.build();
  const ContractionHierarchy ch(g);
  EXPECT_EQ(ch.distance(0, 4), 4ULL * 0xf0000000u);
}

TEST(ContractionHierarchy, ZeroWeightEdges) {
  Rng rng(5);
  const Graph base = gen::connected_gnm(30, 60, rng);
  const DegreeReduction red = reduce_degree(base, 2);
  expect_ch_exact(red.graph);
}

TEST(ContractionHierarchy, RanksAreAPermutation) {
  Rng rng(6);
  const Graph g = gen::connected_gnm(40, 80, rng);
  const ContractionHierarchy ch(g);
  std::vector<bool> seen(40, false);
  for (Vertex v = 0; v < 40; ++v) {
    ASSERT_LT(ch.rank(v), 40u);
    EXPECT_FALSE(seen[ch.rank(v)]);
    seen[ch.rank(v)] = true;
  }
}

TEST(ContractionHierarchy, StatsPopulated) {
  Rng rng(7);
  const Graph g = gen::road_like(6, 6, 0.2, 9, rng);
  const ContractionHierarchy ch(g);
  EXPECT_GT(ch.space_bytes(), 0u);
  EXPECT_GT(ch.average_upward_degree(), 0.0);
}

TEST(ChHubLabels, ExactCoverOnClassicShapes) {
  for (const Graph& g : {gen::grid(5, 5), gen::path(15), gen::star(12)}) {
    const ContractionHierarchy ch(g);
    const HubLabeling labels = ch.extract_hub_labeling();
    const auto truth = DistanceMatrix::compute(g);
    EXPECT_FALSE(verify_labeling(g, labels, truth).has_value());
  }
}

class ChHubLabelSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChHubLabelSweep, ExactOnRandomGraphs) {
  Rng rng(GetParam());
  Graph g = gen::gnm(50, 100, rng);
  if (GetParam() % 2 == 0) g = gen::randomize_weights(g, 9, rng);
  const ContractionHierarchy ch(g);
  const HubLabeling labels = ch.extract_hub_labeling();
  const auto truth = DistanceMatrix::compute(g);
  EXPECT_FALSE(verify_labeling(g, labels, truth).has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChHubLabelSweep, ::testing::Values(1, 2, 3, 4));

TEST(ChHubLabels, SizeTracksSearchSpace) {
  Rng rng(10);
  const Graph g = gen::road_like(8, 8, 0.2, 9, rng);
  const ContractionHierarchy ch(g);
  const HubLabeling labels = ch.extract_hub_labeling();
  // The filtered labels cannot exceed the raw search spaces, which are
  // bounded by n; and must include each vertex itself.
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    EXPECT_TRUE(labels.has_hub(v, v));
  }
  EXPECT_GT(labels.average_label_size(), 1.0);
}

TEST(ContractionHierarchy, TinyWitnessBudgetStillExact) {
  // A settle budget of 1 forces many conservative shortcuts but must stay
  // exact.
  Rng rng(8);
  const Graph g = gen::connected_gnm(40, 80, rng);
  const ContractionHierarchy tight(g, /*witness_settle_limit=*/1);
  const ContractionHierarchy loose(g, /*witness_settle_limit=*/256);
  EXPECT_GE(tight.num_shortcuts(), loose.num_shortcuts());
  const auto truth = DistanceMatrix::compute(g);
  for (Vertex u = 0; u < 40; u += 3) {
    for (Vertex v = 0; v < 40; v += 2) {
      EXPECT_EQ(tight.distance(u, v), truth.at(u, v));
      EXPECT_EQ(loose.distance(u, v), truth.at(u, v));
    }
  }
}

}  // namespace
}  // namespace hublab
