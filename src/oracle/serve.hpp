#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "hub/pll.hpp"
#include "oracle/workload.hpp"
#include "util/exemplar.hpp"
#include "util/heavyhitter.hpp"
#include "util/perfcount.hpp"
#include "util/qsketch.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"

/// \file serve.hpp
/// Closed-loop query-serving simulator: the observability testbed for the
/// paper's core trade-off.  Theorems 1.4/4.1 trade label size against
/// query time; tracking that trade-off across revisions needs *latency
/// distributions* per oracle per workload, not single wall clocks.  The
/// simulator builds one oracle over a graph, drives N point-to-point
/// queries from a synthetic workload, records each query's latency into a
/// `QuantileSketch` (p50/p90/p99/p999 of actual nanosecond samples), and
/// reports through the shared run-report JSON (`SERVE_<oracle>.json`,
/// validated by `hublab validate-bench`) plus an optional Prometheus text
/// dump.
///
/// Workloads (all deterministic given the seed):
///  - `uniform`: independent uniform endpoints — the adversarial baseline;
///  - `zipf`:    endpoints drawn from a Zipf(~1.0) popularity ranking over
///               vertex ids, approximating skewed production traffic;
///  - `near`:    u uniform, v the endpoint of a short random walk from u
///               (1..4 hops) — local queries, the PLL fast path;
///  - `far`:     endpoints from opposite distance quartiles of a BFS/
///               Dijkstra sweep — long-range queries, the worst case the
///               lower-bound gadgets are built from.
///
/// Oracles: `pll` (vector-label hub labeling), `pll-flat` (the same
/// labeling through the flat SoA kernel of hub/flat_labeling.hpp), `ch`,
/// and `bidij`.
///
/// Registry metrics: `serve.queries` / `serve.reachable` counters, the
/// `serve.query_ns` sketch, `serve.space_bytes` and
/// `serve.worker_utilization_pct` gauges (plus per-worker
/// `serve.worker_busy_ns.<i>` busy-time gauges), all tagged under tracer
/// spans `build-oracle` / `gen-workload` / `run-queries`.  With hardware
/// counters enabled (util/perfcount.hpp), the query loop additionally
/// accumulates per-chunk counter deltas across all workers into
/// `SimResult::hw` and the `perf.*` counters.
///
/// Per-query attribution (docs/observability.md "Attributing tail
/// latency"): the recorded loop answers through `distance_with_stats`,
/// feeding a deterministic exemplar reservoir (`serve.query_exemplars`
/// store), a threshold-triggered slow-query log (`serve.slow_queries`
/// counter plus structured WARN lines through util/log), a scan-cost
/// heavy-hitter sketch over meeting hubs (`hub.scan_cost`), and windowed
/// per-interval series (`serve.window.count` gauge plus dynamic
/// `serve.window.{queries,qps,p50_ns,p99_ns}.<i>` gauges), all emitted as
/// the schema-v4 `windows` / `slow_queries` / `exemplars` /
/// `heavy_hitters` report members.

namespace hublab {
class DistanceOracle;  // oracle/oracle.hpp
}  // namespace hublab

namespace hublab::serve {

// WorkloadKind / WorkloadGenerator moved to oracle/workload.hpp so the
// query benches drive the exact pair streams serve-sim serves.
enum class OracleKind { kPll, kPllFlat, kCh, kBidij };

[[nodiscard]] std::string_view oracle_kind_name(OracleKind kind) noexcept;
[[nodiscard]] std::optional<OracleKind> parse_oracle_kind(std::string_view name) noexcept;

struct SimConfig {
  OracleKind oracle = OracleKind::kPll;
  WorkloadKind workload = WorkloadKind::kUniform;
  std::uint64_t num_queries = 10000;
  std::uint64_t warmup = 100;  ///< unrecorded leading queries (cache warming)
  std::uint64_t seed = 1;
  std::size_t threads = 1;  ///< query-loop workers (0 = HUBLAB_THREADS, else 1)
  /// Bit-parallel root count for the PLL construction kernel (hub-label
  /// oracles only; see PllConfig::bp_roots).  A pure build-speed knob —
  /// the labels, and hence every query answer, are identical for any
  /// value.
  std::size_t bp_roots = kPllDefaultBpRoots;
  /// Slow-query capture threshold; 0 disables the slow-query log.
  std::uint64_t slow_query_ns = 0;
  /// Windowed time-series resolution (must be > 0); the CLI default is one
  /// second (`--window-ms 1000`).
  std::uint64_t window_ns = 1'000'000'000;
  /// Exemplar-reservoir capacity per pow2 latency bucket.
  std::size_t exemplars_per_bucket = 2;
  /// Cap on retained slow-query entries (the slowest win; every match
  /// still counts toward `serve.slow_queries`).
  std::size_t slow_query_capacity = 32;
  /// Query-block size for the batched oracle path (`--batch N`).  1 (the
  /// default) keeps the per-query `distance_with_stats` loop with full
  /// scan attribution; >= 2 answers each chunk in sub-blocks of this size
  /// through DistanceOracle::distance_batch — same queries, same
  /// checksum/reachable counts (batch answers are byte-identical).  Each
  /// query in a block is charged the block's full wall time (it completes
  /// when the kernel returns), so batched and per-query sketches are
  /// directly comparable completion latencies; per-query scan-cost
  /// attribution is traded away for throughput (docs/performance.md,
  /// "The batched query kernel").
  std::size_t batch = 1;
};

/// One window of the per-interval serve time series.  Windows are indexed
/// by each query's *start offset* into the recorded loop
/// (`offset / window_ns`), so attribution is stable however long the query
/// itself ran; `qps` divides by the nominal window length (the tail window
/// is typically partial and reads low).
struct WindowStats {
  std::uint64_t index = 0;
  std::uint64_t queries = 0;
  std::uint64_t reachable = 0;
  double qps = 0.0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  /// Offered-load members, populated by the open-loop server
  /// (oracle/server.hpp) and left 0 by the closed-loop simulator, where
  /// arrivals are not scheduled: arrivals whose offset fell in this
  /// window, and how many of them admission control shed.
  std::uint64_t offered = 0;
  std::uint64_t rejected = 0;
};

struct SimResult {
  std::string oracle_name;    ///< DistanceOracle::name() of what ran
  std::string workload_name;
  std::uint64_t start_unix_ms = 0;  ///< wall-clock start of the simulation
  std::size_t threads = 1;      ///< resolved query-loop worker count
  std::uint64_t queries = 0;    ///< recorded (post-warmup) queries
  std::uint64_t reachable = 0;  ///< queries with a finite distance
  std::uint64_t checksum = 0;   ///< sum of finite distances (verifiable work proof)
  std::size_t space_bytes = 0;  ///< oracle space accounting
  std::size_t space_bytes_flat = 0;  ///< FlatHubLabeling footprint (hub oracles; else 0)
  double build_s = 0.0;         ///< oracle preprocessing wall time
  double query_loop_s = 0.0;    ///< recorded query loop wall time
  QuantileSketch latency_ns;    ///< per-query latency samples
  /// Busy nanoseconds per executor during the recorded loop, indexed by
  /// par::worker_index() (index 0 is the participating caller).  Workers
  /// that ran no chunk hold 0.
  std::vector<std::uint64_t> worker_busy_ns;
  /// Sum of worker busy time over (resolved threads x loop wall time), as
  /// a percentage.  Observability only — scheduling-dependent.
  double worker_utilization_pct = 0.0;
  /// Hardware-counter deltas summed over every chunk of the recorded
  /// query loop (all workers); hw.valid only when counters were live.
  perf::HwCounters hw;
  /// Per-interval series over the recorded loop, ascending by index.
  std::vector<WindowStats> windows;
  /// Tail-latency witnesses: the per-chunk reservoirs merged in chunk
  /// order (seeded from SimConfig::seed, so the retained set is
  /// deterministic given the measured latencies).
  metrics::ExemplarReservoir exemplars;
  /// Threshold capture (empty when SimConfig::slow_query_ns == 0).
  metrics::SlowQueryLog slow_queries;
  /// Scan cost attributed to each query's meeting hub.
  metrics::SpaceSavingSketch hub_scan_cost;
};

/// Build the configured oracle, run the workload, record latencies.  Spans
/// land in `tracer` when provided; metrics land in the global registry
/// (reset them yourself if you want a clean report).  Throws
/// InvalidArgument on an empty graph.
///
/// With `config.threads > 1` the recorded query loop runs on N workers
/// over a *fixed* chunking of the pre-generated pairs (chunk count is
/// independent of the thread count), each chunk recording into its own
/// QuantileSketch; the per-chunk sketches and counts are merged in chunk
/// order afterwards, so queries/reachable/checksum and the sketch's merge
/// structure are bit-identical for every thread count (the latency
/// *values* are wall-clock samples and vary run to run regardless).
SimResult run_sim(const Graph& g, const SimConfig& config, Tracer* tracer = nullptr);

/// Build just the configured oracle (the `hublab explain` path — one
/// query, no workload).  Throws InvalidArgument on an empty graph.
std::unique_ptr<DistanceOracle> make_oracle(const Graph& g, const SimConfig& config);

/// Write the schema-versioned SERVE report (see util/report.hpp): the
/// shared report document plus serve-specific members (`oracle`,
/// `workload`, `latency_ns` quantiles, space and build time).
void write_serve_report_json(std::ostream& os, const SimResult& result, const SimConfig& config,
                             const Graph& g, std::string_view graph_family,
                             std::string_view git_rev, bool smoke, const Tracer& tracer);

}  // namespace hublab::serve
