#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "bench/harness.hpp"
#include "util/bench_schema.hpp"
#include "util/qsketch.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace hublab {
namespace {

// Value-asserting tests are compiled only against the real metric classes;
// with HUBLAB_METRICS=OFF the stubs report zeros by design and only the
// API-surface and tracing/JSON tests below remain meaningful.
#if HUBLAB_METRICS_ENABLED

TEST(Counter, AddAndReset) {
  metrics::Registry reg;
  metrics::Counter& c = reg.counter("c");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(5);
  EXPECT_EQ(c.value(), 6u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, WrapsModulo2To64) {
  metrics::Registry reg;
  metrics::Counter& c = reg.counter("c");
  c.add(~0ULL);
  c.add(2);
  EXPECT_EQ(c.value(), 1u);
}

TEST(Gauge, SetAddReset) {
  metrics::Registry reg;
  metrics::Gauge& g = reg.gauge("g");
  g.set(-3);
  EXPECT_EQ(g.value(), -3);
  g.add(10);
  EXPECT_EQ(g.value(), 7);
  g.set(2);  // last write wins over accumulated state
  EXPECT_EQ(g.value(), 2);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(Histogram, BucketUpperBounds) {
  EXPECT_EQ(metrics::Histogram::bucket_upper_bound(0), 0u);
  EXPECT_EQ(metrics::Histogram::bucket_upper_bound(1), 1u);
  EXPECT_EQ(metrics::Histogram::bucket_upper_bound(2), 3u);
  EXPECT_EQ(metrics::Histogram::bucket_upper_bound(3), 7u);
  EXPECT_EQ(metrics::Histogram::bucket_upper_bound(64), ~0ULL);
}

TEST(Histogram, RecordsAndReportsPercentileAsBucketBound) {
  metrics::Registry reg;
  metrics::Histogram& h = reg.histogram("h");
  for (const std::uint64_t v : {1u, 2u, 3u, 4u}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 10u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 4u);
  // Values 1 | 2,3 | 4 land in buckets 1 | 2 | 3.  The p50 rank (2 of 4) is
  // first covered by bucket 2 (upper bound 3); the max rank by bucket 3.
  EXPECT_EQ(h.percentile(0.5), 3u);
  EXPECT_EQ(h.percentile(1.0), 7u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Registry, ReturnsStableReferences) {
  metrics::Registry reg;
  metrics::Counter& a = reg.counter("same");
  reg.counter("other").add(1);
  EXPECT_EQ(&a, &reg.counter("same"));
  EXPECT_EQ(&reg.gauge("same"), &reg.gauge("same"));  // separate namespace per kind
  EXPECT_EQ(&reg.histogram("same"), &reg.histogram("same"));
}

TEST(Registry, SnapshotsAreSortedByName) {
  metrics::Registry reg;
  reg.counter("zeta").add(1);
  reg.counter("alpha").add(2);
  reg.counter("mid").add(3);
  const std::vector<metrics::CounterSnapshot> snap = reg.counters();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "alpha");
  EXPECT_EQ(snap[1].name, "mid");
  EXPECT_EQ(snap[2].name, "zeta");
  EXPECT_EQ(snap[0].value, 2u);
}

TEST(Registry, ResetZeroesValuesButKeepsRegistrations) {
  metrics::Registry reg;
  reg.counter("c").add(5);
  reg.gauge("g").set(-1);
  reg.histogram("h").record(9);
  reg.reset();
  ASSERT_EQ(reg.counters().size(), 1u);
  EXPECT_EQ(reg.counters()[0].value, 0u);
  EXPECT_EQ(reg.gauges()[0].value, 0);
  EXPECT_EQ(reg.histograms()[0].count, 0u);
}

TEST(Registry, DumpIsDeterministic) {
  metrics::Registry reg;
  reg.counter("b.count").add(2);
  reg.counter("a.count").add(1);
  reg.gauge("size").set(42);
  reg.histogram("dist").record(3);
  std::ostringstream first;
  std::ostringstream second;
  reg.dump(first);
  reg.dump(second);
  EXPECT_EQ(first.str(), second.str());
  EXPECT_NE(first.str().find("a.count"), std::string::npos);
  EXPECT_LT(first.str().find("a.count"), first.str().find("b.count"));
}

TEST(Registry, SketchRecordsMergesAndSnapshots) {
  metrics::Registry reg;
  metrics::Sketch& s = reg.sketch("lat");
  for (std::uint64_t v = 1; v <= 100; ++v) s.record(v);

  QuantileSketch shard;
  for (std::uint64_t v = 101; v <= 200; ++v) shard.record(v);
  s.merge(shard);

  const std::vector<metrics::SketchSnapshot> snaps = reg.sketches();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].name, "lat");
  EXPECT_EQ(snaps[0].count, 200u);
  EXPECT_EQ(snaps[0].sum, 20100u);
  EXPECT_EQ(snaps[0].min, 1u);
  EXPECT_EQ(snaps[0].max, 200u);
  // 200 samples fit one buffer: quantiles are exact, rank error 0.
  EXPECT_EQ(snaps[0].p50, 100u);
  EXPECT_EQ(snaps[0].p90, 180u);
  EXPECT_EQ(snaps[0].p99, 198u);
  EXPECT_EQ(snaps[0].rank_error, 0u);

  reg.reset();
  ASSERT_EQ(reg.sketches().size(), 1u);
  EXPECT_EQ(reg.sketches()[0].count, 0u);
}

TEST(Tracer, SpanCapturesCounterDeltas) {
  metrics::Registry reg;
  Tracer tracer(reg);
  reg.counter("work").add(3);
  {
    auto span = tracer.span("phase");
    reg.counter("work").add(7);
    reg.counter("fresh").add(2);  // registered mid-span: delta vs absent = 2
  }
  ASSERT_EQ(tracer.records().size(), 1u);
  const Tracer::Record& r = tracer.records()[0];
  EXPECT_FALSE(r.open);
  ASSERT_EQ(r.counter_deltas.size(), 2u);
  EXPECT_EQ(r.counter_deltas[0].name, "fresh");
  EXPECT_EQ(r.counter_deltas[0].value, 2u);
  EXPECT_EQ(r.counter_deltas[1].name, "work");
  EXPECT_EQ(r.counter_deltas[1].value, 7u);
}

#endif  // HUBLAB_METRICS_ENABLED

TEST(Tracer, RecordsNestedSpansWithDepthAndParent) {
  metrics::Registry reg;
  Tracer tracer(reg);
  {
    auto outer = tracer.span("outer");
    {
      auto inner = tracer.span("inner");
    }
    auto sibling = tracer.span("sibling");
  }
  const std::vector<Tracer::Record>& rs = tracer.records();
  ASSERT_EQ(rs.size(), 3u);
  EXPECT_EQ(rs[0].name, "outer");
  EXPECT_EQ(rs[0].depth, 0);
  EXPECT_EQ(rs[0].parent, Tracer::kNoParent);
  EXPECT_EQ(rs[1].name, "inner");
  EXPECT_EQ(rs[1].depth, 1);
  EXPECT_EQ(rs[1].parent, 0u);
  EXPECT_EQ(rs[2].name, "sibling");
  EXPECT_EQ(rs[2].parent, 0u);
  for (const Tracer::Record& r : rs) {
    EXPECT_FALSE(r.open);
    EXPECT_GE(r.dur_s, 0.0);
  }
  EXPECT_GE(rs[0].dur_s, rs[1].dur_s);  // outer encloses inner
}

TEST(Tracer, SpanEndIsIdempotentAndMoveSafe) {
  metrics::Registry reg;
  Tracer tracer(reg);
  auto span = tracer.span("a");
  auto moved = std::move(span);
  moved.end();
  moved.end();  // no-op
  ASSERT_EQ(tracer.records().size(), 1u);
  EXPECT_FALSE(tracer.records()[0].open);
  tracer.clear();
  EXPECT_TRUE(tracer.records().empty());
}

TEST(Tracer, ChromeTraceIsValidJson) {
  metrics::Registry reg;
  Tracer tracer(reg);
  {
    auto outer = tracer.span("outer");
    auto inner = tracer.span("in\"ner");  // name needing escaping
    inner.end();
  }
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const JsonValue doc = parse_json(os.str());
  ASSERT_TRUE(doc.is_object());
  const JsonValue* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->array_items.size(), 2u);
  const JsonValue* ph = events->array_items[0].find("ph");
  ASSERT_NE(ph, nullptr);
  EXPECT_EQ(ph->string_value, "X");
}

TEST(Json, EscapeHandlesQuotesBackslashesAndControls) {
  // escape() returns the quoted JSON string literal.
  EXPECT_EQ(JsonWriter::escape("plain"), "\"plain\"");
  EXPECT_EQ(JsonWriter::escape("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(JsonWriter::escape("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(JsonWriter::escape("a\nb\tc"), "\"a\\nb\\tc\"");
  EXPECT_EQ(JsonWriter::escape(std::string_view("\x01", 1)), "\"\\u0001\"");
}

TEST(Json, WriterParseRoundTrip) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object();
  w.kv("name", "he said \"hi\"");
  w.kv("count", std::uint64_t{18446744073709551615ULL});
  w.kv("delta", std::int64_t{-5});
  w.kv("ratio", 0.25);
  w.kv("ok", true);
  w.key("missing").value_null();
  w.key("items").begin_array();
  w.value(std::uint64_t{1});
  w.value(std::uint64_t{2});
  w.end_array();
  w.key("nested").begin_object();
  w.kv("deep", false);
  w.end_object();
  w.end_object();
  EXPECT_TRUE(w.done());

  const JsonValue doc = parse_json(os.str());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.find("name")->string_value, "he said \"hi\"");
  EXPECT_DOUBLE_EQ(doc.find("ratio")->number_value, 0.25);
  EXPECT_EQ(doc.find("delta")->number_value, -5.0);
  EXPECT_TRUE(doc.find("ok")->bool_value);
  EXPECT_TRUE(doc.find("missing")->is_null());
  ASSERT_EQ(doc.find("items")->array_items.size(), 2u);
  EXPECT_EQ(doc.find("items")->array_items[1].number_value, 2.0);
  EXPECT_FALSE(doc.find("nested")->find("deep")->bool_value);
  EXPECT_EQ(doc.find("absent"), nullptr);
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)parse_json("{"), ParseError);
  EXPECT_THROW((void)parse_json("{\"a\": }"), ParseError);
  EXPECT_THROW((void)parse_json("[1, 2] trailing"), ParseError);
  EXPECT_THROW((void)parse_json(""), ParseError);
  EXPECT_THROW((void)parse_json("{'single': 1}"), ParseError);
}

std::string make_harness_json(bool ok) {
  const char* argv_smoke[] = {"metrics_test", "--smoke"};
  bench::Harness harness(2, const_cast<char**>(argv_smoke), "schema_probe", "probe banner");
  harness.add_graph("gnm", 100, 300);
  harness.set_repetitions(3);
  {
    auto span = harness.phase("work");
    metrics::registry().counter("probe.events").add(4);
  }
  std::ostringstream os;
  harness.write_json(os, ok);
  return os.str();
}

TEST(BenchSchema, HarnessJsonValidatesAndIsDeterministic) {
  const std::string text = make_harness_json(true);
  const JsonValue doc = parse_json(text);
  const std::vector<std::string> errors = validate_bench_json(doc);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());
  EXPECT_EQ(doc.find("schema_version")->number_value,
            static_cast<double>(kBenchSchemaVersion));
  EXPECT_EQ(doc.find("bench")->string_value, "schema_probe");
  EXPECT_TRUE(doc.find("smoke")->bool_value);
  EXPECT_EQ(doc.find("repetitions")->number_value, 3.0);
  ASSERT_EQ(doc.find("graphs")->array_items.size(), 1u);
  EXPECT_EQ(doc.find("graphs")->array_items[0].find("family")->string_value, "gnm");
  ASSERT_EQ(doc.find("phases")->array_items.size(), 1u);
  EXPECT_EQ(doc.find("phases")->array_items[0].find("name")->string_value, "work");

  // Two emissions of the same run differ only in wall times, the start
  // timestamp and the RSS sample; strip those members and the documents
  // must agree byte for byte.
  std::string again = make_harness_json(true);
  auto strip_volatile = [](std::string s) {
    for (const char* key : {"\"wall_s\":", "\"start_unix_ms\":", "\"peak_rss_bytes\":"}) {
      std::size_t pos = 0;
      while ((pos = s.find(key, pos)) != std::string::npos) {
        const std::size_t end = s.find_first_of(",\n}", pos);
        s.erase(pos, end - pos);
      }
    }
    return s;
  };
  EXPECT_EQ(strip_volatile(text), strip_volatile(again));
}

TEST(BenchSchema, ValidatorRejectsBrokenDocuments) {
  const std::string good = make_harness_json(true);

  // Not an object at top level.
  EXPECT_FALSE(validate_bench_json(parse_json("[1, 2]")).empty());

  // Wrong schema version (the validator accepts [kBenchSchemaMinVersion,
  // kBenchSchemaVersion], nothing newer).
  const std::string version_member = "\"schema_version\": 4";
  ASSERT_NE(good.find(version_member), std::string::npos);
  std::string wrong_version = good;
  wrong_version.replace(wrong_version.find(version_member), version_member.size(),
                        "\"schema_version\": 99");
  EXPECT_FALSE(validate_bench_json(parse_json(wrong_version)).empty());

  // Empty bench name.
  std::string empty_name = good;
  empty_name.replace(empty_name.find("\"bench\": \"schema_probe\""),
                     std::string("\"bench\": \"schema_probe\"").size(), "\"bench\": \"\"");
  EXPECT_FALSE(validate_bench_json(parse_json(empty_name)).empty());

  // Required top-level members must all be present (start_unix_ms and
  // peak_rss_bytes became required in schema version 2).
  for (const char* member :
       {"bench", "git_rev", "smoke", "ok", "repetitions", "graphs", "phases", "counters",
        "gauges", "start_unix_ms", "peak_rss_bytes"}) {
    JsonValue doc = parse_json(good);
    std::erase_if(doc.object_members,
                  [&](const auto& kv) { return kv.first == member; });
    EXPECT_FALSE(validate_bench_json(doc).empty()) << "missing " << member << " accepted";
  }
}

TEST(Harness, ParsesThreadsFlag) {
  const char* argv[] = {"metrics_test", "--smoke", "--threads", "4"};
  bench::Harness harness(4, const_cast<char**>(argv), "threads_probe", "banner");
  EXPECT_EQ(harness.threads(), 4u);
  std::ostringstream os;
  harness.write_json(os, true);
  const JsonValue doc = parse_json(os.str());
  EXPECT_TRUE(validate_bench_json(doc).empty());
  ASSERT_NE(doc.find("threads"), nullptr);
  EXPECT_EQ(doc.find("threads")->number_value, 4.0);
}

TEST(BenchSchema, ThreadsMemberIsOptionalButValidated) {
  const std::string good = make_harness_json(true);
  const std::string threads_member = "\"threads\": 1";
  ASSERT_NE(good.find(threads_member), std::string::npos);

  // Absent is fine: pre-threads baselines must keep validating.
  JsonValue no_threads = parse_json(good);
  std::erase_if(no_threads.object_members,
                [](const auto& kv) { return kv.first == "threads"; });
  EXPECT_TRUE(validate_bench_json(no_threads).empty());

  // Present but zero or mistyped is rejected.
  std::string zero = good;
  zero.replace(zero.find(threads_member), threads_member.size(), "\"threads\": 0");
  EXPECT_FALSE(validate_bench_json(parse_json(zero)).empty());
  std::string mistyped = good;
  mistyped.replace(mistyped.find(threads_member), threads_member.size(),
                   "\"threads\": \"four\"");
  EXPECT_FALSE(validate_bench_json(parse_json(mistyped)).empty());
}

TEST(Harness, ParsesBpRootsFlag) {
  const char* argv[] = {"metrics_test", "--smoke", "--bp-roots", "16"};
  bench::Harness harness(4, const_cast<char**>(argv), "bp_probe", "banner");
  EXPECT_EQ(harness.bp_roots(), 16u);
  EXPECT_EQ(harness.pll_config().bp_roots, 16u);
  std::ostringstream os;
  harness.write_json(os, true);
  const JsonValue doc = parse_json(os.str());
  EXPECT_TRUE(validate_bench_json(doc).empty());
  ASSERT_NE(doc.find("bp_roots"), nullptr);
  EXPECT_EQ(doc.find("bp_roots")->number_value, 16.0);
}

TEST(BenchSchema, BpRootsMemberIsOptionalButValidated) {
  const std::string good = make_harness_json(true);
  const std::string member = "\"bp_roots\": 64";
  ASSERT_NE(good.find(member), std::string::npos);

  // Absent is fine: baselines predating the construction kernel must
  // keep validating.
  JsonValue without = parse_json(good);
  std::erase_if(without.object_members,
                [](const auto& kv) { return kv.first == "bp_roots"; });
  EXPECT_TRUE(validate_bench_json(without).empty());

  // Zero is a real configuration (the scalar builder); negative or
  // mistyped is rejected.
  std::string zero = good;
  zero.replace(zero.find(member), member.size(), "\"bp_roots\": 0");
  EXPECT_TRUE(validate_bench_json(parse_json(zero)).empty());
  std::string negative = good;
  negative.replace(negative.find(member), member.size(), "\"bp_roots\": -1");
  EXPECT_FALSE(validate_bench_json(parse_json(negative)).empty());
  std::string mistyped = good;
  mistyped.replace(mistyped.find(member), member.size(), "\"bp_roots\": \"lots\"");
  EXPECT_FALSE(validate_bench_json(parse_json(mistyped)).empty());
}

TEST(BenchSchema, ValidatorAcceptsVersion1WithoutV2Members) {
  // Committed v1 baselines predate start_unix_ms / peak_rss_bytes; they
  // must keep validating so bench-compare can diff old against new.
  std::string v1 = make_harness_json(true);
  const std::string version_member = "\"schema_version\": 4";
  ASSERT_NE(v1.find(version_member), std::string::npos);
  v1.replace(v1.find(version_member), version_member.size(), "\"schema_version\": 1");
  JsonValue doc = parse_json(v1);
  std::erase_if(doc.object_members, [](const auto& kv) {
    return kv.first == "start_unix_ms" || kv.first == "peak_rss_bytes";
  });
  const std::vector<std::string> errors = validate_bench_json(doc);
  EXPECT_TRUE(errors.empty()) << (errors.empty() ? "" : errors.front());

  // A document *claiming* version 2 is rejected without them.
  JsonValue v2_doc = parse_json(make_harness_json(true));
  std::erase_if(v2_doc.object_members,
                [](const auto& kv) { return kv.first == "peak_rss_bytes"; });
  EXPECT_FALSE(validate_bench_json(v2_doc).empty());
}

}  // namespace
}  // namespace hublab
