#pragma once

#include <vector>

#include "graph/graph.hpp"

/// \file distance_matrix.hpp
/// All-pairs shortest path distances, materialized.
///
/// The Theorem 4.1 pipeline repeatedly asks for |H_uv| (the number of valid
/// hubs of a pair), which needs random access to all distances; tests also
/// validate labelings against ground truth.  Storage is O(n^2) * 8 bytes,
/// so callers keep n in the low thousands.

namespace hublab {

class DistanceMatrix {
 public:
  DistanceMatrix() = default;

  /// Compute by n SSSP runs (BFS / 0-1 BFS / Dijkstra as appropriate).
  /// The per-source runs are independent, so `threads` splits them over
  /// deterministic static chunks (util/parallel.hpp); every row is written
  /// by exactly one chunk and the matrix is bit-identical for every thread
  /// count.
  static DistanceMatrix compute(const Graph& g, std::size_t threads = 1);

  [[nodiscard]] std::size_t num_vertices() const { return n_; }

  [[nodiscard]] Dist at(Vertex u, Vertex v) const {
    HUBLAB_ASSERT(u < n_ && v < n_);
    return data_[static_cast<std::size_t>(u) * n_ + v];
  }

  /// Row of distances from u (size n).
  [[nodiscard]] const Dist* row(Vertex u) const {
    HUBLAB_ASSERT(u < n_);
    return data_.data() + static_cast<std::size_t>(u) * n_;
  }

  /// True if x lies on some shortest u-v path.
  [[nodiscard]] bool on_shortest_path(Vertex u, Vertex x, Vertex v) const {
    const Dist duv = at(u, v);
    if (duv == kInfDist) return false;
    const Dist a = at(u, x);
    const Dist b = at(x, v);
    return a != kInfDist && b != kInfDist && a + b == duv;
  }

  /// |H_uv|: number of valid hubs for the pair (u, v); includes u and v.
  [[nodiscard]] std::size_t num_valid_hubs(Vertex u, Vertex v) const;

  /// All valid hubs for (u, v), in increasing vertex order.
  [[nodiscard]] std::vector<Vertex> valid_hubs(Vertex u, Vertex v) const;

  [[nodiscard]] std::size_t memory_bytes() const { return data_.size() * sizeof(Dist); }

 private:
  std::size_t n_ = 0;
  std::vector<Dist> data_;
};

}  // namespace hublab
