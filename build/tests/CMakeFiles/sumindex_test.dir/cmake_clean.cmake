file(REMOVE_RECURSE
  "CMakeFiles/sumindex_test.dir/sumindex_test.cpp.o"
  "CMakeFiles/sumindex_test.dir/sumindex_test.cpp.o.d"
  "sumindex_test"
  "sumindex_test.pdb"
  "sumindex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sumindex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
