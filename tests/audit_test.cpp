// Randomized deep-invariant self-check (see util/audit.hpp and
// docs/correctness.md).  Every structure the certification pipeline relies
// on is audited from scratch on randomized instances, and each audit is
// shown to actually *catch* planted corruption.  Running this suite under
// the asan-ubsan preset exercises the deep read paths of every module.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "hub/labeling.hpp"
#include "hub/pll.hpp"
#include "lowerbound/gadget.hpp"
#include "rs/rs_graph.hpp"
#include "util/audit.hpp"
#include "util/rng.hpp"

namespace hublab {
namespace {

TEST(AuditReport, StartsClean) {
  AuditReport report;
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.num_issues(), 0u);
  EXPECT_EQ(report.to_string(), "audit: ok\n");
}

TEST(AuditReport, RecordsAndFormatsIssues) {
  AuditReport report;
  report.fail("graph", "offsets not monotone at vertex 3: 7 > 5");
  EXPECT_FALSE(report.ok());
  ASSERT_EQ(report.issues().size(), 1u);
  EXPECT_EQ(report.issues()[0].context, "graph");
  EXPECT_NE(report.to_string().find("offsets not monotone"), std::string::npos);
}

TEST(AuditReport, RequireReturnsConditionAndRecordsFailures) {
  AuditReport report;
  EXPECT_TRUE(report.require(true, "ctx", "never recorded"));
  EXPECT_TRUE(report.ok());
  EXPECT_FALSE(report.require(false, "ctx", "recorded"));
  EXPECT_EQ(report.num_issues(), 1u);
}

TEST(AuditReport, CapsRecordedIssuesButCountsAll) {
  AuditReport report;
  for (int i = 0; i < 200; ++i) report.fail("ctx", "issue " + std::to_string(i));
  EXPECT_EQ(report.num_issues(), 200u);
  EXPECT_EQ(report.issues().size(), AuditReport::kMaxRecorded);
  EXPECT_NE(report.to_string().find("and 136 more"), std::string::npos);
}

TEST(AuditReport, MergeCombinesCounts) {
  AuditReport a;
  AuditReport b;
  a.fail("a", "x");
  b.fail("b", "y");
  b.fail("b", "z");
  a.merge(b);
  EXPECT_EQ(a.num_issues(), 3u);
  EXPECT_EQ(a.issues().size(), 3u);
}

// ---------------------------------------------------------------------------
// Graph CSR audit
// ---------------------------------------------------------------------------

TEST(GraphAudit, EmptyGraphIsClean) {
  const Graph g;
  EXPECT_TRUE(g.audit().ok());
}

TEST(GraphAudit, RandomizedGraphsAreClean) {
  Rng rng(0xA0D17ULL);
  for (int round = 0; round < 20; ++round) {
    const std::size_t n = 2 + rng.next_below(60);
    const std::size_t max_m = n * (n - 1) / 2;
    const std::size_t m = rng.next_below(max_m + 1);
    const Graph g = gen::gnm(n, m, rng);
    const AuditReport report = g.audit();
    EXPECT_TRUE(report.ok()) << report.to_string();
  }
}

TEST(GraphAudit, WeightedAndStructuredGraphsAreClean) {
  Rng rng(7);
  const Graph weighted = gen::randomize_weights(gen::grid(5, 7), 50, rng);
  EXPECT_TRUE(weighted.audit().ok()) << weighted.audit().to_string();
  EXPECT_TRUE(gen::complete(9).audit().ok());
  EXPECT_TRUE(gen::star(12).audit().ok());
  const Graph ba = gen::barabasi_albert(80, 3, rng);
  EXPECT_TRUE(ba.audit().ok()) << ba.audit().to_string();
}

TEST(GraphAudit, BuilderCollapsesParallelEdgesToAuditCleanForm) {
  GraphBuilder b(4);
  b.add_edge(0, 1, 5);
  b.add_edge(1, 0, 3);  // parallel, min weight 3 must win on both sides
  b.add_edge(2, 3);
  const Graph g = b.build();
  const AuditReport report = g.audit();
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(g.edge_weight(0, 1), 3u);
}

// ---------------------------------------------------------------------------
// Hub labeling audit
// ---------------------------------------------------------------------------

TEST(LabelingAudit, PllLabelingsAuditCleanOnRandomGraphs) {
  Rng rng(0x1AB5EEDULL);
  for (int round = 0; round < 8; ++round) {
    const std::size_t n = 8 + rng.next_below(40);
    const Graph g = gen::connected_gnm(n, n + rng.next_below(2 * n), rng);
    const HubLabeling labels = pruned_landmark_labeling(g);
    const AuditReport report = labels.audit(g, 16, rng());
    EXPECT_TRUE(report.ok()) << report.to_string();
  }
}

TEST(LabelingAudit, CatchesWrongDistanceEntry) {
  const Graph g = gen::path(5);
  HubLabeling labels(5);
  // All-pairs-through-vertex-0 cover, but one distance is off by one.
  for (Vertex v = 0; v < 5; ++v) labels.add_hub(v, 0, v == 3 ? 4 : v);
  labels.finalize();
  const AuditReport report = labels.audit(g, 64, 42);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("true distance"), std::string::npos);
}

TEST(LabelingAudit, CatchesUncoveredPair) {
  const Graph g = gen::path(4);
  HubLabeling labels(4);
  for (Vertex v = 0; v < 4; ++v) labels.add_hub(v, v, 0);  // self-hubs only
  labels.finalize();
  const AuditReport report = labels.audit(g, 64, 7);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("uncovered"), std::string::npos);
}

TEST(LabelingAudit, CatchesUnsortedLabelsWhenNotFinalized) {
  const Graph g = gen::path(3);
  HubLabeling labels(3);
  labels.add_hub(1, 2, 1);
  labels.add_hub(1, 0, 1);  // out of order; finalize() never called
  const AuditReport report = labels.audit(g, 0, 1);
  EXPECT_FALSE(report.ok());
}

TEST(LabelingAudit, CatchesOutOfRangeHubAndBadSelfDistance) {
  const Graph g = gen::path(3);
  HubLabeling labels(3);
  labels.add_hub(0, 7, 1);  // hub id beyond n
  labels.add_hub(1, 1, 2);  // self-hub with nonzero distance
  labels.finalize();
  const AuditReport report = labels.audit(g, 0, 1);
  EXPECT_GE(report.num_issues(), 2u);
}

TEST(LabelingAudit, SizeMismatchIsReported) {
  const Graph g = gen::path(4);
  const HubLabeling labels(3);
  EXPECT_FALSE(labels.audit(g, 0, 1).ok());
}

// ---------------------------------------------------------------------------
// H_{b,l} gadget audit
// ---------------------------------------------------------------------------

TEST(GadgetAudit, SmallGadgetsAuditCleanIncludingLemma22Samples) {
  constexpr std::pair<std::uint32_t, std::uint32_t> kCases[] = {{1, 1}, {1, 2}, {2, 1}, {2, 2}};
  for (const auto& [b, ell] : kCases) {
    const lb::LayeredGadget h(lb::GadgetParams{b, ell});
    const AuditReport report = h.audit(4, 0x9ADU + b + ell);
    EXPECT_TRUE(report.ok()) << "b=" << b << " ell=" << ell << "\n" << report.to_string();
  }
}

TEST(GadgetAudit, MaskedGadgetAuditsClean) {
  const lb::GadgetParams params{2, 1};
  std::vector<bool> mask(params.layer_size(), false);
  mask[1] = mask[2] = true;
  const lb::LayeredGadget h(params, &mask);
  const AuditReport report = h.audit(/*num_samples=*/4, 11);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(GadgetAudit, UnderlyingGraphAlsoAuditsClean) {
  const lb::LayeredGadget h(lb::GadgetParams{2, 2});
  const AuditReport report = h.graph().audit();
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// ---------------------------------------------------------------------------
// RS graph audit
// ---------------------------------------------------------------------------

TEST(RsAudit, BehrendRsGraphsAuditClean) {
  for (const std::uint64_t M : {5ULL, 17ULL, 40ULL, 101ULL}) {
    const rs::RsGraph graph = rs::behrend_rs_graph(M);
    const AuditReport report = rs::audit_rs_graph(graph);
    EXPECT_TRUE(report.ok()) << "M=" << M << "\n" << report.to_string();
    EXPECT_TRUE(graph.graph.audit().ok());
  }
}

TEST(RsAudit, CatchesCorruptedMetadata) {
  rs::RsGraph graph = rs::behrend_rs_graph(20);
  graph.M += 1;  // vertex count no longer matches 3M
  EXPECT_FALSE(rs::audit_rs_graph(graph).ok());
}

TEST(RsAudit, CatchesBrokenPartition) {
  rs::RsGraph graph = rs::behrend_rs_graph(20);
  ASSERT_FALSE(graph.partition.matchings.empty());
  ASSERT_FALSE(graph.partition.matchings[0].empty());
  // Drop one edge from its class: the partition no longer covers E(g).
  graph.partition.matchings[0].pop_back();
  const AuditReport report = rs::audit_rs_graph(graph);
  EXPECT_FALSE(report.ok());
}

// ---------------------------------------------------------------------------
// Randomized cross-module sweep: one audit pass over everything the
// certification pipeline touches, with fresh randomness per run.
// ---------------------------------------------------------------------------

TEST(AuditSweep, RandomizedEndToEnd) {
  Rng rng(0xC0FFEEULL);
  AuditReport combined;
  for (int round = 0; round < 5; ++round) {
    const std::size_t n = 10 + rng.next_below(30);
    const Graph g = gen::connected_gnm(n, 2 * n, rng);
    combined.merge(g.audit());
    const HubLabeling labels = pruned_landmark_labeling(g, VertexOrder::kRandom, rng());
    combined.merge(labels.audit(g, 8, rng()));
  }
  const lb::LayeredGadget h(lb::GadgetParams{2, 1});
  combined.merge(h.audit(2, rng()));
  combined.merge(rs::audit_rs_graph(rs::behrend_rs_graph(30)));
  EXPECT_TRUE(combined.ok()) << combined.to_string();
}

}  // namespace
}  // namespace hublab
