/// \file bench_sumindex_protocol.cpp
/// Experiment THM1.6 (DESIGN.md): the reduction from distance labeling to
/// the Sum-Index problem.
///
/// For each gadget size, both players build the masked gadget G'_{b,l} from
/// the shared bitstring S, label it with a deterministic PLL-backed distance
/// labeling, and send one label (plus their index) to the referee, who
/// decodes S[(a+b) mod m] by comparing the decoded distance with the
/// Lemma 2.2 closed form.  We require 100% correctness over randomized
/// instances and report the message sizes next to the trivial protocol
/// (Alice ships S: m + log m bits).  The paper's theorem reads this table
/// right-to-left: any smaller distance label would beat SUMINDEX(m).

#include <cstdio>
#include <memory>

#include "bench/harness.hpp"
#include "hub/pll.hpp"
#include "sumindex/sumindex.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace hublab;

namespace {

HubLabeling pll_natural(const Graph& g) {
  return pruned_landmark_labeling(g, VertexOrder::kNatural);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness harness(argc, argv, "sumindex_protocol",
                         "Experiment THM1.6: Sum-Index via gadget distance labels");

  const auto scheme = std::make_shared<HubDistanceLabeling>(&pll_natural, "pll");

  TextTable table({"b", "l", "m", "graph", "n", "trials", "correct", "max alice bits",
                   "trivial bits", "time(s)"});
  bool all_ok = true;

  struct Case {
    std::uint32_t b;
    std::uint32_t ell;
    bool degree3;
    std::uint64_t trials;
  };
  const std::vector<Case> full_cases{
      {2, 1, false, 64}, {3, 1, false, 64}, {2, 2, false, 64},
      {3, 2, false, 48}, {4, 1, false, 64}, {4, 2, false, 24},
      {2, 1, true, 32},  {3, 1, true, 24},
  };
  const std::vector<Case> smoke_cases{{2, 1, false, 16}, {2, 2, false, 8}, {2, 1, true, 8}};

  auto gadget_span = harness.phase("gadget-protocols");
  for (const auto& c : harness.smoke() ? smoke_cases : full_cases) {
    const lb::GadgetParams params{c.b, c.ell};
    const si::GadgetProtocol protocol(params, scheme, c.degree3);
    const std::uint64_t m = protocol.universe_size();

    Timer timer;
    const si::ProtocolStats stats = si::evaluate_protocol(protocol, c.trials, 17, 12);
    const double elapsed = timer.elapsed_s();
    all_ok = all_ok && stats.all_correct();

    // Graph size for context (unmasked instance).
    const lb::LayeredGadget h(params);
    std::uint64_t n = h.graph().num_vertices();
    if (c.degree3) n = lb::Degree3Gadget(h).graph().num_vertices();
    harness.add_graph(c.degree3 ? "masked-degree3-gadget" : "masked-gadget", n,
                      h.graph().num_edges());

    table.add_row({fmt_u64(c.b), fmt_u64(c.ell), fmt_u64(m), c.degree3 ? "G'" : "H'", fmt_u64(n),
                   fmt_u64(stats.trials),
                   fmt_u64(stats.correct) + "/" + fmt_u64(stats.trials),
                   fmt_u64(stats.max_alice_bits), fmt_u64(m + ceil_log2(m)),
                   fmt_double(elapsed, 2)});
  }
  gadget_span.end();
  harness.print(table, "Theorem 1.6 protocol (every row must decode 100% correctly)");

  // Baseline sanity: the trivial protocol on the same universe sizes.
  auto trivial_span = harness.phase("trivial-baseline");
  TextTable base({"m", "trials", "correct", "alice bits"});
  for (const std::uint64_t m : {2ULL, 4ULL, 16ULL, 64ULL}) {
    const si::TrivialProtocol protocol(m);
    const si::ProtocolStats stats = si::evaluate_protocol(protocol, 64, 3);
    all_ok = all_ok && stats.all_correct();
    base.add_row({fmt_u64(m), fmt_u64(stats.trials),
                  fmt_u64(stats.correct) + "/" + fmt_u64(stats.trials),
                  fmt_u64(stats.max_alice_bits)});
  }
  trivial_span.end();
  harness.print(base, "Trivial ship-S baseline");

  return harness.finish("THM1.6 protocol", all_ok);
}
