# Empty compiler generated dependencies file for upperbound_test.
# This may be replaced when dependencies are built.
