#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "hub/labeling.hpp"

/// \file structured.hpp
/// Hub labelings for structured graph classes, as surveyed in Section 1.1
/// of the paper:
///
/// * Trees ([Pel00], [AGHP16b]): select central vertices (centroids) as
///   hubs and recurse on the subtrees.  Every vertex stores its O(log n)
///   centroid-decomposition ancestors -- Theta(log^2 n) bits, matching the
///   tree lower bound of [GPPR04].
///
/// * Planar-style separator hierarchies ([GPPR04], here instantiated on
///   rectangular grids): recursively cut the region by its middle row or
///   column; every vertex stores exact distances to the separator vertices
///   of every region on its root-to-leaf path.  Any shortest path either
///   stays in the common region and crosses its separator, or leaves it
///   through an ancestor separator -- either way the crossing vertex is a
///   common hub.  O(sqrt(n)) hubs per vertex on an r x c grid.
///
/// These make the paper's contrast concrete: structured classes have
/// polylog / sqrt(n) hub labelings, while sparse graphs in general are
/// stuck at n / 2^{Theta(sqrt(log n))} (Theorem 1.1).

namespace hublab {

/// Centroid-decomposition hub labeling of a forest.  Throws
/// InvalidArgument if g has a cycle.  Exact for any edge weights.
/// Average label size <= log2(n) + 1.
HubLabeling tree_centroid_labeling(const Graph& g);

/// Recursive-separator hub labeling of a `rows x cols` grid-like graph:
/// the vertex at (r, c) must have id r*cols + c and edges only between
/// 4-neighbors (weights arbitrary, e.g. gen::grid or a weighted variant
/// without diagonal shortcuts).  Exact; O(sqrt(n)) hubs per vertex.
HubLabeling grid_separator_labeling(const Graph& g, std::size_t rows, std::size_t cols);

/// Recursive separator labeling for *arbitrary* graphs using BFS-level
/// separators: each region is split by the middle BFS level from an
/// eccentric root (which disconnects the region); every vertex stores
/// whole-graph distances to all separators on its root-to-leaf region
/// path.  Always exact.  Label size tracks separator quality: ~sqrt(n) on
/// meshes, O(log n)-ish on trees, and necessarily large on expanders and
/// on the paper's gadget (Theorem 1.1 applies to every such scheme).
HubLabeling bfs_separator_labeling(const Graph& g);

}  // namespace hublab
