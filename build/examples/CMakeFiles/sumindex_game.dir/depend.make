# Empty dependencies file for sumindex_game.
# This may be replaced when dependencies are built.
